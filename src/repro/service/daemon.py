"""The asyncio checker daemon.

:class:`CheckerService` turns an in-process online checker into a
long-running network service — the continuous collector→checker loop of
the paper's deployment story (§IV-C, §VI): producers tail a database's
CDC/WAL stream and push committed transactions over the wire; the daemon
checks them as they arrive and pushes verdicts back.

Architecture::

    clients ──ndjson (v1)──▶ per-connection reader ──▶ bounded ingest queue
            ──frames (v2)──▶   (codec sniffed per         │ (backpressure,
                                message, first byte)      │  weighed in txns)
    subscribers ◀──violation push── drain task ◀──────────┘
                                       │  receive_many() batches,
                                       │  under the ingest lock, in a
                                       ▼  worker thread
                                 Aion / AionSer / ShardedAion

Protocol v2 submit frames arrive as :class:`ColumnarBatch` objects and
stay columnar all the way into ``receive_many`` — the daemon never
builds per-transaction dicts for them (see
:mod:`repro.service.protocol` for the wire contract and handshake).

Three properties carry the correctness story over from the library:

- **ordering** — each connection's transactions enter the queue in the
  order the client sent them, so a producer that ships its sessions in
  session order preserves the SESSION precondition (§III-C1) no matter
  how connections interleave;
- **backpressure** — the queue is bounded; when checking falls behind,
  readers stop consuming their sockets and producers block on TCP,
  instead of the daemon buffering unboundedly (the paper's collector
  applies the same admission discipline in batches);
- **serialized ingestion** — one drain task hands batches to
  ``receive_many`` under the checker's ingest lock, so the wire adds
  concurrency around the checker, never inside it, and verdicts are
  identical to in-process checking (``tests/test_service.py`` proves it
  differentially).

:class:`ServiceThread` hosts a daemon on a background thread with its
own event loop — the harness used by the blocking client's tests and the
wire-throughput benchmark, and a one-liner for embedding the service in
a synchronous program.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.violations import CheckResult
from repro.histories.model import Transaction
from repro.histories.serialization import ColumnarBatch, txn_from_dict
from repro.obs.http import HttpSidecar
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import SlowBatchLog
from repro.online.metrics import ThroughputSeries
from repro.service.config import ServiceConfig
from repro.service.framing import (
    FRAME_MAGIC0,
    HEADER_SIZE,
    K_HELLO,
    SERVER_KIND_OF_TYPE,
    decode_frame_header,
    decode_frame_payload,
    encode_json_frame,
)
from repro.service.protocol import (
    MAX_TRACKED_SESSIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    new_session_token,
    result_to_dict,
    validate_session_token,
    violation_to_dict,
)

__all__ = ["CheckerService", "ServiceThread"]

#: Maximum wire-line length (a submit batch of 500 wide transactions
#: stays well under this; the bound exists so one malformed producer
#: cannot balloon the reader's buffer).
_MAX_LINE_BYTES = 16 * 1024 * 1024

#: A subscriber whose transport buffer exceeds this is disconnected: the
#: drain loop never awaits a subscriber's socket, so a consumer that
#: stops reading must be shed — not allowed to stall all checking.
_MAX_SUBSCRIBER_BUFFER = 8 * 1024 * 1024

#: Violation pushes kept for late subscribers (``subscribe`` with
#: ``replay``).  Bounds daemon memory on a violation-heavy stream; a
#: replay delivers the most recent window, live pushes are never lost.
_MAX_REPLAY_BACKLOG = 10_000


class _WireSession:
    """Per-session resume state: the daemon side of exactly-once ingest.

    One session outlives its connections: a client that reconnects with
    the session's token resumes against the same watermark.
    ``acked_seq`` is the highest submit ``seq`` admitted *in full* —
    client submit sequence numbers are strictly increasing within a
    session, so any resubmission at or below the watermark has already
    been ingested and is acked again without touching the queue.
    """

    __slots__ = ("token", "acked_seq", "deduped_txns", "resumes")

    def __init__(self, token: str) -> None:
        self.token = token
        self.acked_seq = 0
        self.deduped_txns = 0
        self.resumes = 0


class _IngestQueue:
    """A weight-bounded asyncio queue: capacity counts *transactions*.

    ``asyncio.Queue(maxsize=...)`` counts items, but the v2 wire path
    enqueues whole columnar batches as single items — an item-bounded
    queue would multiply its admission bound by the batch size.  Here
    every put declares a weight (1 for a bare transaction, ``len(batch)``
    for a columnar slice) and the capacity, ``join()``, and
    ``task_done()`` accounting are all in transactions, so backpressure
    bites at the same stream depth on both protocols.

    An item heavier than the whole capacity is admitted when the queue
    is idle — a producer must not deadlock on a frame the configuration
    can never fit.

    Every entry also carries its submit *stamp* (``time.monotonic()`` at
    decode) so the drain loop can close the submit→verdict latency
    histogram without a side table, and :attr:`high_water` tracks the
    deepest transaction-weighted backlog ever queued — the signal that a
    capacity bound is actually being hit, which a depth gauge sampled at
    scrape time routinely misses.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._items: Deque[Tuple[Any, int, float]] = deque()
        self._size = 0  # queued weight
        self._unfinished = 0  # admitted weight not yet task_done()
        self._getters: Deque[asyncio.Future] = deque()
        self._putters: Deque[asyncio.Future] = deque()
        self._finished = asyncio.Event()
        self._finished.set()
        #: Deepest transaction-weighted depth ever reached.
        self.high_water = 0

    def qsize(self) -> int:
        return self._size

    def empty(self) -> bool:
        return not self._items

    async def put(self, item: Any, weight: int = 1, stamp: float = 0.0) -> None:
        while self._size > 0 and self._size + weight > self._capacity:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._putters.append(fut)
            try:
                await fut
            except BaseException:
                try:
                    self._putters.remove(fut)
                except ValueError:
                    pass
                raise
        self.put_nowait(item, weight, stamp)

    def put_nowait(self, item: Any, weight: int = 1, stamp: float = 0.0) -> None:
        self._items.append((item, weight, stamp))
        self._size += weight
        if self._size > self.high_water:
            self.high_water = self._size
        self._unfinished += weight
        self._finished.clear()
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done():
                fut.set_result(None)
                break

    async def get(self) -> Tuple[Any, int, float]:
        while not self._items:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._getters.append(fut)
            try:
                await fut
            except BaseException:
                try:
                    self._getters.remove(fut)
                except ValueError:
                    pass
                raise
        return self.get_nowait()

    def get_nowait(self) -> Tuple[Any, int, float]:
        if not self._items:
            raise asyncio.QueueEmpty
        item, weight, stamp = self._items.popleft()
        self._size -= weight
        # Wake every waiting putter; each re-checks the capacity and the
        # ones that still do not fit simply wait again.
        while self._putters:
            fut = self._putters.popleft()
            if not fut.done():
                fut.set_result(None)
        return item, weight, stamp

    def task_done(self, weight: int = 1) -> None:
        self._unfinished -= weight
        if self._unfinished <= 0:
            self._unfinished = 0
            self._finished.set()

    async def join(self) -> None:
        if self._unfinished > 0:
            await self._finished.wait()


class CheckerService:
    """One daemon instance: listeners, ingest queue, drain loop."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self.checker = self.config.build_checker()
        # ShardedAion exposes its own ingest lock; the single-shard
        # checkers get one here.  Every checker touch below — ingest,
        # poll, stats reads, GC, finalize — happens under this lock, so
        # worker-thread ingestion and loop-thread reads never interleave.
        self._lock: threading.Lock = getattr(self.checker, "ingest_lock", None) or threading.Lock()
        self._queue: Optional[_IngestQueue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._subscribers: Set[asyncio.StreamWriter] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._shutting_down = False
        self._shutdown_done: Optional[asyncio.Task] = None
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.unix_path: Optional[str] = None
        self.final_result: Optional[CheckResult] = None
        self.started_at = time.monotonic()
        self.received = 0
        self.pushed_violations = 0
        self.gc_cycles = 0
        self.gc_seconds = 0.0
        self.ingest_errors = 0
        self.last_ingest_error: Optional[str] = None
        self.throughput = ThroughputSeries()
        #: Violation messages handed to _broadcast, in push order — the
        #: replay backlog for late subscribers.  Maintained on the event
        #: loop so subscribe-with-replay can snapshot it and join
        #: _subscribers without an await in between (atomic w.r.t.
        #: broadcasts: no duplicate, no missed push).  Bounded: oldest
        #: entries fall off a violation-heavy stream.
        self._violation_log: Deque[Dict[str, Any]] = deque(maxlen=_MAX_REPLAY_BACKLOG)
        #: ThroughputSeries is written by the drain loop (event-loop
        #: thread) and snapshotted by stats() (worker thread).
        self._throughput_lock = threading.Lock()
        #: Connections that completed the v2 handshake; absent = v1.
        #: Only the send side consults this — the reader sniffs each
        #: incoming message's codec from its first byte.
        self._conn_proto: Dict[asyncio.StreamWriter, int] = {}
        #: Resume sessions by token, least-recently-touched first.
        #: Bounded at MAX_TRACKED_SESSIONS (LRU eviction) so token churn
        #: cannot grow daemon memory.  Event-loop thread only.
        self._sessions: "OrderedDict[str, _WireSession]" = OrderedDict()
        #: Connection → resume session, for connections whose hello
        #: opened or resumed one.
        self._conn_session: Dict[asyncio.StreamWriter, _WireSession] = {}
        #: Monotonic stamps of recent session resumes — the sliding
        #: window behind the ``resume_storm`` health component.
        self._resume_stamps: Deque[float] = deque(maxlen=4096)
        self.sessions_issued = 0
        self.session_resumes = 0
        self.resume_deduped_txns = 0
        self.resume_rejected = 0
        #: Per-codec wire counters, exported as ``stats()["wire"]``.
        #: Touched only from the event-loop thread (reads from stats()
        #: may tear across keys, which is fine for monotonic counters).
        self.wire: Dict[str, Dict[str, int]] = {
            codec: {
                "frames_in": 0,
                "bytes_in": 0,
                "frames_out": 0,
                "bytes_out": 0,
                "decode_errors": 0,
            }
            for codec in ("v1", "v2")
        }
        #: HTTP observability sidecar (``/metrics``, ``/health``,
        #: ``/stats``); bound in :meth:`start` when ``http_port`` is set.
        self._http: Optional[HttpSidecar] = None
        self.http_address: Optional[Tuple[str, int]] = None
        #: ``(value, measured_at)`` cache for ``estimated_bytes`` — the
        #: deep-sizeof walk runs under the ingest lock, so wire STATS and
        #: ``/metrics`` share one measurement per TTL window instead of
        #: stalling ingest per request.
        self._bytes_cache: Optional[Tuple[int, float]] = None
        self._bytes_cache_lock = threading.Lock()
        #: Monotonic stamps of the last completed drain cycle / idle EXT
        #: poll, feeding the ``/health`` freshness components.
        self._last_drain_at: Optional[float] = None
        self._last_poll_at: Optional[float] = None
        #: Slow-batch trace ring (see :mod:`repro.obs.trace`), wired as
        #: the kernel's ``on_slow_batch`` hook when ``slow_batch_ms`` is
        #: configured.
        self.slow_batch_log = SlowBatchLog()
        kernel_stats = getattr(self.checker, "kernel_stats", None)
        if kernel_stats is not None:
            kernel_stats.sample_every = self.config.kernel_sample_every
            if self.config.slow_batch_ms is not None:
                kernel_stats.slow_threshold = self.config.slow_batch_ms / 1000.0
                kernel_stats.on_slow_batch = self.slow_batch_log.record
        #: The metrics registry behind ``GET /metrics``.  The submit→
        #: verdict histogram is the only live-updated instrument (one
        #: ``observe`` per drained queue entry); everything else mirrors
        #: hot-path counters at scrape time, so enabling the sidecar
        #: costs the ingest path nothing.
        self.metrics = MetricsRegistry()
        self.latency = self.metrics.histogram(
            "repro_submit_to_verdict_seconds",
            "Latency from submit decode to post-verdict drain completion",
            DEFAULT_LATENCY_BUCKETS,
        )
        self._build_metric_families()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured listeners and start the drain loop."""
        self._queue = _IngestQueue(self.config.queue_capacity)
        self.started_at = time.monotonic()
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=_MAX_LINE_BYTES,
            )
            self._servers.append(server)
            self.tcp_address = server.sockets[0].getsockname()[:2]
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.config.unix_path),
                limit=_MAX_LINE_BYTES,
            )
            self._servers.append(server)
            self.unix_path = str(self.config.unix_path)
        if self.config.http_port is not None:
            self._http = HttpSidecar(
                self.config.host,
                self.config.http_port,
                {
                    "/metrics": self._http_metrics,
                    "/health": self._http_health,
                    "/stats": self._http_stats,
                },
            )
            await self._http.start()
            self.http_address = self._http.address
        self._drain_task = asyncio.get_running_loop().create_task(self._drain_loop())
        if math.isfinite(self.config.timeout):
            # A finite EXT timeout arms real-clock deadlines that must
            # fire even when no transactions arrive — the drain loop only
            # polls after a batch, so an idle wire needs this tick.
            self._tick_task = asyncio.get_running_loop().create_task(self._tick_loop())

    async def wait_closed(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self) -> CheckResult:
        """Graceful stop: drain, finalize, broadcast, disconnect.

        Safe to call more than once (later callers await the first
        shutdown and receive the same final result).
        """
        if self._shutting_down:
            assert self._shutdown_done is not None
            return await asyncio.shield(self._shutdown_done)
        self._shutting_down = True
        self._shutdown_done = asyncio.get_running_loop().create_task(self._shutdown_impl())
        return await asyncio.shield(self._shutdown_done)

    async def abort(self) -> None:
        """Ungraceful stop — the chaos harness's stand-in for a crash.

        Closes listeners and connections and cancels the drain/tick
        tasks without draining, finalizing, or saying goodbye: clients
        see a dead socket, exactly as after a SIGKILL.  Queued-but-
        unchecked transactions are dropped, and the in-memory session
        table dies with the process image — resuming clients get fresh
        sessions from this daemon's successor, which is why a restart
        supervisor must re-feed the acked prefix (see
        :mod:`repro.chaos.campaign`).
        """
        self._shutting_down = True
        try:
            for server in self._servers:
                server.close()
            if self._http is not None:
                self._http.close()
            for task in (self._drain_task, self._tick_task):
                if task is not None:
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
            for writer in list(self._connections):
                self._close_writer(writer)
            # Clients must see a crash, but the host process should not
            # leak shard workers: release checker resources after the
            # sockets are already dead.
            close = getattr(self.checker, "close", None)
            if close is not None:
                try:
                    await self._run_checker(self._locked, close)
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
        finally:
            self._stopped.set()

    async def _shutdown_impl(self) -> CheckResult:
        # However shutdown ends — cleanly or with a raising finalize /
        # broadcast / close — _stopped must be set, or wait_closed()
        # (and `repro serve`, and ServiceThread.stop()) hangs forever on
        # a daemon that can no longer recover.
        try:
            return await self._shutdown_steps()
        finally:
            self._stopped.set()

    async def _shutdown_steps(self) -> CheckResult:
        # Stop accepting new connections.  Server.wait_closed() is never
        # awaited: since Python 3.12.1 it blocks until every connection
        # handler returns, and this coroutine is typically awaited *by*
        # a handler (a wire shutdown request) — a circular wait.  close()
        # alone already closes the listening sockets; remaining handler
        # cleanup happens when the loop exits.
        for server in self._servers:
            server.close()
        if self._http is not None:
            self._http.close()
        # Drain everything already admitted, then stop the drain loop.
        assert self._queue is not None
        await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
        # A submit handler suspended on a full queue can slip transactions
        # in after join() returned (its blocked put resumes once slots
        # free up).  They were acked, so they must be checked: keep
        # flushing until the queue stays empty across an event-loop
        # yield, which gives every woken putter its final turn.
        while True:
            leftovers: List[Tuple[Any, int, float]] = []
            total = 0
            while True:
                try:
                    item, weight, stamp = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                leftovers.append((item, weight, stamp))
                total += weight
            if leftovers:
                try:
                    for group in self._coalesce(leftovers):
                        await self._run_checker(self._ingest_locked, group)
                except Exception as exc:
                    self.ingest_errors += 1
                    self.last_ingest_error = f"{type(exc).__name__}: {exc}"
                self._queue.task_done(total)
                continue
            await asyncio.sleep(0)
            if self._queue.empty():
                break
        result = await self._run_checker(self._finalize_locked)
        self.final_result = result
        await self._broadcast(await self._run_checker(self._fresh_violation_messages))
        # Every open connection — subscribed or not — receives the final
        # result before its socket closes, so a client that requested the
        # shutdown reads the verdict it asked for.
        farewell = {"type": "result", **result_to_dict(result)}
        for writer in list(self._connections):
            self._send(writer, farewell)
            self._send(writer, {"type": "bye"})
        for writer in list(self._connections):
            self._close_writer(writer)
        close = getattr(self.checker, "close", None)
        if close is not None:
            await self._run_checker(self._locked, close)
        return result

    def _finalize_locked(self) -> CheckResult:
        with self._lock:
            return self.checker.finalize()

    def _locked(self, fn, *args: Any) -> Any:
        """Run ``fn`` under the ingest lock (for worker-thread dispatch).

        Every checker touch goes through a worker thread rather than
        acquiring the lock on the event loop: a large batch can hold the
        lock for a long time, and the loop must keep serving pings,
        stats, and fresh submissions meanwhile.
        """
        with self._lock:
            return fn(*args)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    async def _drain_loop(self) -> None:
        """Pull queued transactions, check them in batches, push verdicts."""
        assert self._queue is not None
        queue = self._queue
        batch_size = self.config.batch_size
        while True:
            item, weight, stamp = await queue.get()
            items: List[Tuple[Any, int, float]] = [(item, weight, stamp)]
            total = weight
            while total < batch_size:
                try:
                    item, weight, stamp = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                items.append((item, weight, stamp))
                total += weight
            try:
                try:
                    # One worker-thread hop checks every coalesced group
                    # AND polls for fresh violations — per-group dispatch
                    # plus a separate poll hop measurably costs wire
                    # throughput under GIL contention.
                    fresh = await self._run_checker(
                        self._ingest_groups_locked, self._coalesce(items)
                    )
                except Exception as exc:
                    # A rejected batch (e.g. a submitted append operation,
                    # which the online checkers refuse) must not kill the
                    # drain task — that would wedge every later drain /
                    # finalize / shutdown on queue.join().  Drop the
                    # batch, count it, keep draining.
                    self.ingest_errors += 1
                    self.last_ingest_error = f"{type(exc).__name__}: {exc}"
                    print(
                        f"repro.service: dropped a {total}-transaction batch: "
                        f"{self.last_ingest_error}",
                        file=sys.stderr,
                    )
                else:
                    done_at = time.monotonic()
                    self._last_drain_at = done_at
                    with self._throughput_lock:
                        self.throughput.record(done_at - self.started_at, total)
                    # Close the submit→verdict histogram: every queue
                    # entry was stamped at submit decode, and its
                    # verdicts (synchronous ones, plus this batch's
                    # re-evaluations) are emitted by the ingest hop that
                    # just returned.  Weighted by transactions so v1 and
                    # v2 producers aggregate comparably.
                    observe = self.latency.observe
                    for _item, item_weight, item_stamp in items:
                        if item_stamp > 0.0:
                            observe(done_at - item_stamp, item_weight)
                    try:
                        await self._maybe_collect()
                        await self._broadcast(fresh)
                    except Exception as exc:
                        # GC (which may spill to disk) or a push failing
                        # must not kill the drain task either — the batch
                        # was checked; losing a collection cycle or a
                        # push is recoverable, a dead drain task is not.
                        print(
                            f"repro.service: post-ingest step failed: "
                            f"{type(exc).__name__}: {exc}",
                            file=sys.stderr,
                        )
            finally:
                queue.task_done(total)

    @staticmethod
    def _coalesce(items: List[Tuple[Any, int, float]]) -> List[Any]:
        """Group drained queue entries into ``receive_many()`` calls.

        Runs of bare transactions merge into one list; a columnar batch
        is already a batch and passes through whole.  Arrival order is
        preserved across groups — that is what keeps wire verdicts
        identical to in-process checking when v1 and v2 producers mix.
        """
        groups: List[Any] = []
        run: Optional[List[Transaction]] = None
        for item, _weight, _stamp in items:
            if isinstance(item, ColumnarBatch):
                groups.append(item)
                run = None
            else:
                if run is None:
                    run = []
                    groups.append(run)
                run.append(item)
        return groups

    async def _tick_loop(self) -> None:
        """Fire due EXT-timeout verdicts while the wire is idle.

        ``poll()`` is the only place the EXT timer queue advances outside
        ingestion; without this tick a quiet stream would sit on expired
        timers until the next submit or finalize.
        """
        while True:
            await asyncio.sleep(self.config.poll_interval)
            try:
                await self._broadcast(await self._run_checker(self._fresh_violation_messages))
                self._last_poll_at = time.monotonic()
            except Exception as exc:
                print(
                    f"repro.service: idle poll failed: {type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )

    def _ingest_locked(self, batch: Any) -> None:
        # ``batch`` is a list of transactions or a ColumnarBatch; the
        # checkers' receive_many accepts both.
        # ShardedAion ships its own thread-safe entry point (guarded by
        # the same ingest_lock the daemon uses for every other touch);
        # the single-shard checkers are wrapped here.
        receive = getattr(self.checker, "receive_many_threadsafe", None)
        if receive is not None:
            receive(batch)
        else:
            with self._lock:
                self.checker.receive_many(batch)

    def _ingest_groups_locked(self, groups: List[Any]) -> List[Dict[str, Any]]:
        """Check every coalesced group, then poll — one executor trip.

        A raised ingest error drops this drain cycle's remaining groups
        (matching the old per-group dispatch, where the first failure
        skipped the rest) and leaves any fresh violations to the next
        cycle's poll.
        """
        receive = getattr(self.checker, "receive_many_threadsafe", None)
        if receive is not None:
            for group in groups:
                receive(group)
        else:
            with self._lock:
                for group in groups:
                    self.checker.receive_many(group)
        return self._fresh_violation_messages()

    async def _run_checker(self, fn, *args: Any) -> Any:
        """Run a checker-touching callable on a worker thread.

        Keeps the event loop responsive while a batch is checked — other
        connections keep submitting (until the queue bound bites) and
        stats/ping stay answerable.
        """
        return await asyncio.get_running_loop().run_in_executor(None, fn, *args)

    async def _maybe_collect(self) -> None:
        if self.config.gc_threshold <= 0:
            return
        report = await self._run_checker(self._collect_locked)
        if report is not None:
            self.gc_cycles += 1
            self.gc_seconds += report.seconds

    def _collect_locked(self):
        with self._lock:
            if self.checker.resident_txn_count < self.config.gc_threshold:
                return None
            target = self.checker.suggest_gc_ts(
                keep_recent=self.config.effective_gc_keep_recent
            )
            if target is None:
                return None
            return self.checker.collect_below(target)

    def _fresh_violation_messages(self) -> List[Dict[str, Any]]:
        with self._lock:
            fresh = self.checker.poll()
        self.pushed_violations += len(fresh)
        return [{"type": "violation", "violation": violation_to_dict(v)} for v in fresh]

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _welcome_message(self, version: int) -> Dict[str, Any]:
        offered = [1] if self.config.protocol == "v1" else [1, 2]
        return {
            "type": "welcome",
            "protocol": version,
            "protocols": offered,
            "checker": self.config.checker_kind,
            "level": self.config.level,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        v2_enabled = self.config.protocol != "v1"
        # The opening welcome is always a v1 line: a client cannot know
        # the server speaks v2 until this advertisement arrives.
        self._send(writer, self._welcome_message(PROTOCOL_VERSION))
        try:
            while True:
                # One byte of lookahead classifies the next message:
                # 0xA6 can never start an ndjson line, so it means a v2
                # frame; anything else is the first byte of a line.
                try:
                    first = await reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == FRAME_MAGIC0:
                    wire = self.wire["v2"]
                    if not v2_enabled:
                        wire["decode_errors"] += 1
                        self._send(
                            writer,
                            {"type": "error", "message": "protocol v2 is disabled"},
                        )
                        break
                    try:
                        header = first + await reader.readexactly(HEADER_SIZE - 1)
                    except asyncio.IncompleteReadError:
                        wire["decode_errors"] += 1
                        break
                    try:
                        frame_kind, length = decode_frame_header(header)
                    except ProtocolError as exc:
                        # A bad header means the stream position is lost;
                        # binary framing cannot resync, so close.
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        break
                    try:
                        payload = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        wire["decode_errors"] += 1
                        break
                    wire["frames_in"] += 1
                    wire["bytes_in"] += HEADER_SIZE + length
                    try:
                        message = decode_frame_payload(frame_kind, payload)
                    except ProtocolError as exc:
                        # The framing survived (length was honoured), so
                        # the connection can too — reject this message.
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        continue
                    if frame_kind == K_HELLO:
                        self._handle_hello(message, writer)
                        continue
                else:
                    try:
                        rest = await reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        self._send(writer, {"type": "error", "message": "line too long"})
                        break
                    line = first + rest
                    wire = self.wire["v1"]
                    wire["bytes_in"] += len(line)
                    line = line.strip()
                    if not line:
                        continue
                    wire["frames_in"] += 1
                    try:
                        message = decode_line(line)
                    except ProtocolError as exc:
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        continue
                if not await self._dispatch(message, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._subscribers.discard(writer)
            self._connections.discard(writer)
            self._conn_proto.pop(writer, None)
            # The session itself survives in _sessions: that is what a
            # reconnecting client resumes against.
            self._conn_session.pop(writer, None)
            self._close_writer(writer)

    def _handle_hello(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        """v2 handshake: flip this connection's send side to frames and
        confirm with a framed welcome — carrying session/resume state
        when the hello asked for it."""
        self._conn_proto[writer] = 2
        welcome = self._welcome_message(2)
        if "session_token" in message or "resume_from" in message:
            try:
                session, resumed = self._resolve_session(message)
            except ProtocolError as exc:
                # The framing survived, so the connection does too — the
                # offending hello is rejected without a session, and the
                # client must reconnect or re-hello to get one.
                self.resume_rejected += 1
                self._send(writer, {"type": "error", "message": str(exc)})
                return
            self._conn_session[writer] = session
            welcome = dict(
                welcome,
                session={
                    "token": session.token,
                    "acked_seq": session.acked_seq,
                    "resumed": resumed,
                },
            )
        self._send(writer, welcome)

    def _resolve_session(self, message: Dict[str, Any]) -> Tuple[_WireSession, bool]:
        """Look up or mint the resume session a hello asks for.

        Raises :class:`ProtocolError` for a malformed token, a malformed
        ``resume_from``, or a resume watermark ahead of the daemon's own
        (the client claims acks this daemon never sent — honouring it
        could double-ingest).  An unknown *well-formed* token opens a
        fresh session under a newly minted token: the daemon that issued
        the old token is gone (restart), and adopting a client-supplied
        token would let one producer squat another's session.
        """
        token = message.get("session_token")
        resume_from = message.get("resume_from")
        if resume_from is not None and (
            isinstance(resume_from, bool)
            or not isinstance(resume_from, int)
            or resume_from < 0
        ):
            raise ProtocolError(f"malformed resume_from {resume_from!r}")
        session: Optional[_WireSession] = None
        if token is not None:
            validate_session_token(token)
            session = self._sessions.get(token)
        if session is not None:
            if resume_from is not None and resume_from > session.acked_seq:
                raise ProtocolError(
                    f"resume_from {resume_from} is ahead of the daemon's "
                    f"acked watermark {session.acked_seq}"
                )
            self._sessions.move_to_end(token)
            session.resumes += 1
            self.session_resumes += 1
            self._resume_stamps.append(time.monotonic())
            return session, True
        session = _WireSession(new_session_token())
        self._sessions[session.token] = session
        self.sessions_issued += 1
        while len(self._sessions) > MAX_TRACKED_SESSIONS:
            self._sessions.popitem(last=False)
        return session, False

    async def _dispatch(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns False to close the connection."""
        kind = message["type"]
        seq = message.get("seq")
        if kind == "hello":
            return True
        if kind == "ping":
            self._send(writer, {"type": "pong", "seq": seq})
            return True
        if kind == "submit":
            return await self._handle_submit(message, writer)
        if kind == "subscribe":
            reply: Dict[str, Any] = {"type": "subscribed", "seq": seq}
            self._send(writer, reply)
            if message.get("replay"):
                # Backlog then membership, with no await in between —
                # broadcasts run on this same loop, so the backlog and
                # the live stream partition exactly.
                for push in self._violation_log:
                    self._send(writer, push)
            self._subscribers.add(writer)
            return True
        if kind == "stats":
            include_bytes = bool(message.get("bytes", True))
            stats = await self._run_checker(self.stats, include_bytes)
            self._send(writer, {"type": "stats", "seq": seq, "stats": stats})
            return True
        if kind == "drain":
            assert self._queue is not None
            await self._queue.join()
            processed = await self._run_checker(self._locked, lambda: self.checker.processed)
            self._send(writer, {"type": "drained", "seq": seq, "processed": processed})
            return True
        if kind == "finalize":
            assert self._queue is not None
            await self._queue.join()
            result = await self._run_checker(self._finalize_locked)
            await self._broadcast(await self._run_checker(self._fresh_violation_messages))
            self._send(writer, {"type": "result", "seq": seq, **result_to_dict(result)})
            return True
        if kind == "shutdown":
            # shutdown() sends the final result and a bye to every open
            # connection (this one included) before closing the sockets.
            await self.shutdown()
            return False
        self._send(writer, {"type": "error", "seq": seq, "message": f"unknown message type {kind!r}"})
        return True

    def _dedup_submit(
        self,
        seq: Optional[int],
        n_txns: int,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """True when this submit was already admitted for the session.

        A resubmitted ``seq`` at or below the session watermark was
        ingested on a previous connection (only its ack was lost); it is
        acked again — flagged ``duplicate`` — without touching the
        queue, which is what makes reconnect-and-replay exactly-once.
        """
        session = self._conn_session.get(writer)
        if session is None or seq is None or seq > session.acked_seq:
            return False
        session.deduped_txns += n_txns
        self.resume_deduped_txns += n_txns
        self._send(
            writer,
            {"type": "ack", "seq": seq, "enqueued": n_txns, "duplicate": True},
        )
        return True

    def _advance_watermark(self, seq: Optional[int], writer: asyncio.StreamWriter) -> None:
        """Record a fully admitted submit in the session watermark."""
        session = self._conn_session.get(writer)
        if session is not None and seq is not None and seq > session.acked_seq:
            session.acked_seq = seq

    async def _handle_submit(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> bool:
        seq = message.get("seq")
        # Latency stamp taken once at decode: the histogram then measures
        # queue wait + checking, i.e. the daemon-side submit→verdict path.
        stamp = time.monotonic()
        if self._shutting_down:
            self._send(writer, {"type": "error", "seq": seq, "message": "service is shutting down"})
            return True
        batch = message.get("batch")
        if batch is not None:
            # v2 vectored submit: the frame decoded straight into a
            # ColumnarBatch.  Slice it to the checker's batch size and
            # enqueue the slices whole — they stay columnar through the
            # drain loop into receive_many.
            if len(batch) == 0:
                self._send(
                    writer,
                    {"type": "error", "seq": seq, "message": "submit carries no transactions"},
                )
                return True
            if self._dedup_submit(seq, len(batch), writer):
                return True
            assert self._queue is not None
            total = len(batch)
            admitted = 0
            for piece in batch.slices(self.config.batch_size):
                # Re-checked per slice: a shutdown can start while this
                # handler is suspended on a full queue.
                if self._shutting_down:
                    break
                await self._queue.put(piece, len(piece), stamp)
                admitted += len(piece)
            self.received += admitted
            if admitted < total:
                if seq is not None:
                    self._send(
                        writer,
                        {
                            "type": "error",
                            "seq": seq,
                            "message": f"service is shutting down; "
                            f"admitted {admitted} of {total} transactions",
                        },
                    )
            elif seq is not None:
                self._advance_watermark(seq, writer)
                self._send(writer, {"type": "ack", "seq": seq, "enqueued": admitted})
            return True
        raw = message.get("txns")
        if raw is None:
            single = message.get("txn")
            raw = [single] if single is not None else None
        if not isinstance(raw, list) or not raw:
            self._send(
                writer,
                {"type": "error", "seq": seq, "message": "submit carries no transactions"},
            )
            return True
        try:
            txns = [txn_from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError) as exc:
            self._send(
                writer,
                {"type": "error", "seq": seq, "message": f"malformed transaction: {exc!r}"},
            )
            return True
        if self._dedup_submit(seq, len(txns), writer):
            return True
        assert self._queue is not None
        admitted = 0
        for txn in txns:
            # Re-checked per transaction: a shutdown can start while this
            # handler is suspended on a full queue, and transactions
            # admitted past that point race the final drain.
            if self._shutting_down:
                break
            # Admission blocks when the queue is full: this reader stops
            # consuming its socket and the producer sees TCP backpressure.
            await self._queue.put(txn, 1, stamp)
            admitted += 1
        self.received += admitted
        if admitted < len(txns):
            if seq is not None:
                self._send(
                    writer,
                    {
                        "type": "error",
                        "seq": seq,
                        "message": f"service is shutting down; "
                        f"admitted {admitted} of {len(txns)} transactions",
                    },
                )
        elif seq is not None:
            self._advance_watermark(seq, writer)
            self._send(writer, {"type": "ack", "seq": seq, "enqueued": admitted})
        return True

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def _send(self, writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        if writer.is_closing():
            return
        try:
            if self._conn_proto.get(writer) == 2:
                data = encode_json_frame(SERVER_KIND_OF_TYPE[message["type"]], message)
                wire = self.wire["v2"]
            else:
                data = encode_message(message)
                wire = self.wire["v1"]
            writer.write(data)
            wire["frames_out"] += 1
            wire["bytes_out"] += len(data)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            self._subscribers.discard(writer)

    async def _broadcast(self, messages: List[Dict[str, Any]]) -> None:
        """Push ``messages`` to every subscriber without ever blocking.

        Never awaits a subscriber's socket — a consumer that stops
        reading must not stall checking for everyone else.  Bytes queue
        in the transport; a subscriber whose buffer outgrows
        :data:`_MAX_SUBSCRIBER_BUFFER` is shed instead of waited on.
        """
        self._violation_log.extend(messages)
        if not messages or not self._subscribers:
            return
        # One payload per codec, built lazily: most daemons have all
        # their subscribers on one protocol.
        payload_v1: Optional[bytes] = None
        payload_v2: Optional[bytes] = None
        for writer in list(self._subscribers):
            if writer.is_closing():
                self._subscribers.discard(writer)
                continue
            if self._conn_proto.get(writer) == 2:
                if payload_v2 is None:
                    payload_v2 = b"".join(
                        encode_json_frame(SERVER_KIND_OF_TYPE["violation"], m)
                        for m in messages
                    )
                payload = payload_v2
                wire = self.wire["v2"]
            else:
                if payload_v1 is None:
                    payload_v1 = b"".join(encode_message(m) for m in messages)
                payload = payload_v1
                wire = self.wire["v1"]
            try:
                writer.write(payload)
                wire["frames_out"] += len(messages)
                wire["bytes_out"] += len(payload)
                if writer.transport.get_write_buffer_size() > _MAX_SUBSCRIBER_BUFFER:
                    self._subscribers.discard(writer)
                    self._close_writer(writer)
                    print(
                        "repro.service: dropped a subscriber that stopped reading",
                        file=sys.stderr,
                    )
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                self._subscribers.discard(writer)

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            if not writer.is_closing():
                writer.close()
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _estimated_bytes_cached(self) -> int:
        """The checker's deep-size estimate, cached for ``stats_bytes_ttl``.

        The measurement itself is O(resident state) *under the ingest
        lock*; wire STATS requests and ``/metrics`` scrapes both land
        here, so one measurement per TTL window serves every consumer and
        a scrape loop cannot stall ingest.  Runs on a worker thread.
        """
        ttl = self.config.stats_bytes_ttl
        with self._bytes_cache_lock:
            cached = self._bytes_cache
            if cached is not None and ttl > 0 and time.monotonic() - cached[1] < ttl:
                return cached[0]
        with self._lock:
            value = self.checker.estimated_bytes()
        with self._bytes_cache_lock:
            self._bytes_cache = (value, time.monotonic())
        return value

    def _recent_resumes(self, now: float) -> int:
        """Session resumes inside the sliding resume-storm window.

        The stamp deque is appended on the event loop but read here from
        worker threads too (``stats()``); copy before filtering so a
        concurrent append cannot fault the iteration.
        """
        while True:
            try:
                stamps = list(self._resume_stamps)
                break
            except RuntimeError:  # pragma: no cover - appended mid-copy
                continue
        cutoff = now - self.config.resume_storm_window
        return sum(1 for stamp in stamps if stamp >= cutoff)

    def stats(self, include_bytes: bool = True) -> Dict[str, Any]:
        """Counters for the ``STATS`` request (and the CLI's summary).

        ``include_bytes=False`` skips ``estimated_bytes`` (a deep sizeof
        walk over all resident state — cached for ``stats_bytes_ttl``
        seconds, so repeated requests inside the window cost nothing) —
        the cheap mode for a monitoring poller on a hot daemon; the wire
        request opts out with ``{"type": "stats", "bytes": false}``.
        """
        estimated_bytes = self._estimated_bytes_cached() if include_bytes else None
        with self._lock:
            resident = self.checker.resident_txn_count
            processed = self.checker.processed
            violations = len(self.checker.result.violations)
            # Batch-kernel checkers expose per-stage op counters; offline
            # wrappers (Chronos) do not — report null rather than omit so
            # pollers see a stable schema.
            kernel_stats = getattr(self.checker, "kernel_stats", None)
            kernel = kernel_stats.as_dict() if kernel_stats is not None else None
            # Per-shard rows carry their own staged-GC / scan counters;
            # reuse them for the aggregate figures instead of issuing a
            # second control-plane round trip per shard.
            shard_stats = getattr(self.checker, "shard_stats", None)
            shards = shard_stats() if shard_stats is not None else None
            if shards is not None:
                gc_debt = sum(row["staged_gc"] for row in shards)
                scan_steps = sum(row["scan_steps"] for row in shards)
                gc_scan_steps = sum(row["gc_scan_steps"] for row in shards)
            else:
                debt_fn = getattr(self.checker, "gc_debt", None)
                gc_debt = debt_fn() if debt_fn is not None else 0
                scan_fn = getattr(self.checker, "scan_step_totals", None)
                scan_steps, gc_scan_steps = scan_fn() if scan_fn is not None else (0, 0)
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        queue_high_water = self._queue.high_water if self._queue is not None else 0
        with self._throughput_lock:
            throughput = self.throughput.snapshot()
        return {
            "protocol": PROTOCOL_VERSION,
            "protocols": [1] if self.config.protocol == "v1" else [1, 2],
            "wire": {codec: dict(counters) for codec, counters in self.wire.items()},
            "checker": self.config.checker_kind,
            "level": self.config.level,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "received": self.received,
            "processed": processed,
            "queue_depth": queue_depth,
            "queue_high_water": queue_high_water,
            "queue_capacity": self.config.queue_capacity,
            "resident_txns": resident,
            "violations": violations,
            "subscribers": len(self._subscribers),
            "connections": len(self._connections),
            "sessions": {
                "tracked": len(self._sessions),
                "attached": len(self._conn_session),
                "issued": self.sessions_issued,
                "resumes": self.session_resumes,
                "recent_resumes": self._recent_resumes(time.monotonic()),
                "deduped_txns": self.resume_deduped_txns,
                "rejected": self.resume_rejected,
            },
            "estimated_bytes": estimated_bytes,
            "ingest_errors": self.ingest_errors,
            "last_ingest_error": self.last_ingest_error,
            "throughput": throughput,
            "kernel": kernel,
            "latency": self.latency.summary(),
            "interval_scan_steps": scan_steps,
            "interval_gc_scan_steps": gc_scan_steps,
            "gc": {
                "cycles": self.gc_cycles,
                "seconds": round(self.gc_seconds, 6),
                "threshold": self.config.gc_threshold,
                "debt": gc_debt,
            },
            "shards": shards,
            "lanes": {
                "frames": getattr(self.checker, "lane_frames", 0),
                "fallbacks": getattr(self.checker, "lane_fallbacks", 0),
            },
            "slow_batches": {
                "total": self.slow_batch_log.total,
                "recent": self.slow_batch_log.tail(3),
            },
        }

    def health(self) -> Tuple[bool, Dict[str, Any]]:
        """Componentized liveness: ``(overall ok, JSON-ready detail)``.

        Designed to run on the event loop without touching the checker
        (no ingest-lock hop): every input is either task state or a
        counter the loop thread already owns.  Components:

        - ``drain`` — the drain task exists and has not died.  A dead
          drain task means acked transactions will never be checked.
        - ``backlog`` — the violation replay backlog has room.  At
          capacity, late subscribers silently lose history.
        - ``queue`` — depth vs. capacity (reported, never failing:
          a full queue is backpressure doing its job).
        - ``ext_timer`` — with a finite EXT timeout, the idle poll task
          is alive and has polled recently; on an infinite timeout the
          component is reported as disabled and always healthy.
        - ``resume_storm`` — session resumes inside the sliding
          ``resume_storm_window`` stay below the configured threshold.
          A storm means clients are flapping (reconnect churn), so
          verdict-latency expectations no longer hold.
        - ``shards`` — process-mode shard workers are all alive, and in
          shm mode each lane consumer's heartbeat is advancing (an
          alive-but-wedged consumer is unhealthy too); serial executors
          are trivially healthy.
        """
        now = time.monotonic()
        components: Dict[str, Dict[str, Any]] = {}

        drain_ok = self._drain_task is not None and not self._drain_task.done()
        drain_age = None if self._last_drain_at is None else round(now - self._last_drain_at, 3)
        components["drain"] = {
            "ok": drain_ok,
            "detail": "alive" if drain_ok else "drain task is not running",
            "last_batch_age_s": drain_age,
        }

        backlog_size = len(self._violation_log)
        backlog_cap = self._violation_log.maxlen or 0
        backlog_ok = backlog_size < backlog_cap
        components["backlog"] = {
            "ok": backlog_ok,
            "detail": "saturated — oldest replay entries are being dropped"
            if not backlog_ok
            else "has room",
            "size": backlog_size,
            "capacity": backlog_cap,
        }

        depth = self._queue.qsize() if self._queue is not None else 0
        components["queue"] = {
            "ok": True,
            "detail": "backpressure engaged" if depth >= self.config.queue_capacity else "flowing",
            "depth": depth,
            "capacity": self.config.queue_capacity,
            "high_water": self._queue.high_water if self._queue is not None else 0,
        }

        if math.isfinite(self.config.timeout):
            tick_ok = self._tick_task is not None and not self._tick_task.done()
            poll_age = None if self._last_poll_at is None else now - self._last_poll_at
            # Freshness bound: generous enough that one long drain batch
            # cannot flap the endpoint, tight enough that a wedged loop
            # is caught within seconds.
            stale_after = max(10 * self.config.poll_interval, 5.0)
            started_age = now - self.started_at
            fresh = (
                poll_age < stale_after
                if poll_age is not None
                else started_age < stale_after  # no poll due yet after start
            )
            components["ext_timer"] = {
                "ok": tick_ok and fresh,
                "detail": "polling"
                if tick_ok and fresh
                else ("tick task is not running" if not tick_ok else "polls are stale"),
                "poll_age_s": None if poll_age is None else round(poll_age, 3),
                "poll_interval_s": self.config.poll_interval,
            }
        else:
            components["ext_timer"] = {
                "ok": True,
                "detail": "disabled (infinite EXT timeout)",
            }

        recent_resumes = self._recent_resumes(now)
        storm = recent_resumes >= self.config.resume_storm_threshold
        components["resume_storm"] = {
            "ok": not storm,
            "detail": (
                f"{recent_resumes} session resumes in the last "
                f"{self.config.resume_storm_window:g}s"
                + (" — clients are flapping" if storm else "")
            ),
            "recent_resumes": recent_resumes,
            "window_s": self.config.resume_storm_window,
            "threshold": self.config.resume_storm_threshold,
        }

        workers_alive = getattr(self.checker, "workers_alive", None)
        shards_ok = True if workers_alive is None else workers_alive()
        if workers_alive is None or self.config.shard_executor == "serial":
            shard_detail = "in-process"
        elif shards_ok:
            shard_detail = "workers alive"
        else:
            # Distinguish a dead process from an alive-but-wedged lane
            # consumer: lane_health reads only shm heartbeat counters and
            # process liveness, so it is safe from the event loop.
            lane_health = getattr(self.checker, "lane_health", None)
            lanes = lane_health() if lane_health is not None else []
            dead = [row["shard"] for row in lanes if not row["alive"]]
            wedged = [row["shard"] for row in lanes if row["alive"] and row["stalled"]]
            if dead:
                shard_detail = f"shard workers died: {dead}"
            elif wedged:
                shard_detail = f"shard lane consumers are wedged: {wedged}"
            else:
                shard_detail = "a shard worker died"
        components["shards"] = {
            "ok": shards_ok,
            "detail": shard_detail,
            "n_shards": self.config.n_shards,
            "executor": self.config.shard_executor,
        }

        ok = all(component["ok"] for component in components.values())
        payload = {
            "status": "ok" if ok else "unhealthy",
            "checker": self.config.checker_kind,
            "uptime_s": round(now - self.started_at, 3),
            "shutting_down": self._shutting_down,
            "components": components,
        }
        return ok, payload

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------

    def _build_metric_families(self) -> None:
        """Register every exported family once, so ``/metrics`` presents a
        stable catalog from the first scrape (absent shards excepted)."""
        m = self.metrics
        self._m_uptime = m.gauge("repro_uptime_seconds", "Seconds since the daemon started")
        self._m_ingested = m.counter(
            "repro_ingested_txns_total", "Transactions admitted from the wire"
        )
        self._m_processed = m.counter(
            "repro_processed_txns_total", "Transactions checked by the online checker"
        )
        self._m_violations = m.counter(
            "repro_violations_total", "Violations found since startup"
        )
        self._m_pushed = m.counter(
            "repro_pushed_violations_total", "Violation messages pushed to subscribers"
        )
        self._m_ingest_errors = m.counter(
            "repro_ingest_errors_total", "Batches dropped by ingest errors"
        )
        self._m_queue_depth = m.gauge(
            "repro_queue_depth_txns", "Transaction-weighted ingest queue depth"
        )
        self._m_queue_high_water = m.gauge(
            "repro_queue_high_water_txns", "Deepest ingest queue depth ever reached"
        )
        self._m_queue_capacity = m.gauge(
            "repro_queue_capacity_txns", "Configured ingest queue capacity"
        )
        self._m_resident = m.gauge(
            "repro_resident_txns", "Transactions resident in checker memory"
        )
        self._m_resident_bytes = m.gauge(
            "repro_resident_bytes", "Deep-size estimate of checker state (TTL-cached)"
        )
        self._m_subscribers = m.gauge("repro_subscribers", "Connected violation subscribers")
        self._m_connections = m.gauge("repro_connections", "Open wire connections")
        self._m_sessions_tracked = m.gauge(
            "repro_sessions_tracked", "Resume sessions held in the daemon's LRU table"
        )
        self._m_sessions_issued = m.counter(
            "repro_sessions_issued_total", "Session tokens minted for hello handshakes"
        )
        self._m_session_resumes = m.counter(
            "repro_session_resumes_total",
            "Reconnects that resumed a known session token",
        )
        self._m_resume_deduped = m.counter(
            "repro_resume_deduped_txns_total",
            "Transactions skipped by (session, seq) dedup during resume replay",
        )
        self._m_resume_rejected = m.counter(
            "repro_resume_rejected_total",
            "Resume attempts rejected (malformed token or stale watermark)",
        )
        self._m_resume_recent = m.gauge(
            "repro_resume_recent",
            "Session resumes inside the resume-storm health window",
        )
        self._m_wire_frames = m.counter(
            "repro_wire_frames_total", "Wire messages by codec and direction", ("codec", "direction")
        )
        self._m_wire_bytes = m.counter(
            "repro_wire_bytes_total", "Wire bytes by codec and direction", ("codec", "direction")
        )
        self._m_wire_errors = m.counter(
            "repro_wire_decode_errors_total", "Undecodable wire messages by codec", ("codec",)
        )
        self._m_kernel_batches = m.counter(
            "repro_kernel_batches_total", "Batches routed through the staged kernel"
        )
        self._m_kernel_txns = m.counter(
            "repro_kernel_txns_total", "Transactions decoded by the kernel route pass"
        )
        self._m_kernel_ops = m.counter(
            "repro_kernel_ops_total", "Kernel operations by stage counter", ("stage",)
        )
        self._m_kernel_stage_seconds = m.counter(
            "repro_kernel_stage_seconds_total",
            "Sampled wall time per kernel stage (see repro_kernel_timed_batches_total)",
            ("stage",),
        )
        self._m_kernel_timed = m.counter(
            "repro_kernel_timed_batches_total", "Batches whose stage timings were sampled"
        )
        self._m_kernel_slow = m.counter(
            "repro_kernel_slow_batches_total", "Batches exceeding the slow-batch threshold"
        )
        self._m_scan_steps = m.counter(
            "repro_interval_scan_steps_total", "Interval-index entries examined by overlap queries"
        )
        self._m_gc_scan_steps = m.counter(
            "repro_interval_gc_scan_steps_total", "Interval-index entries examined by GC sweeps"
        )
        self._m_gc_cycles = m.counter("repro_gc_cycles_total", "Completed GC cycles")
        self._m_gc_seconds = m.counter("repro_gc_seconds_total", "Wall time spent in GC")
        self._m_gc_debt = m.gauge(
            "repro_gc_debt", "Entries staged for the next GC cycle (heap + staging lists)"
        )
        self._m_shard_versions = m.gauge(
            "repro_shard_versions", "Frontier versions held by one shard", ("shard",)
        )
        self._m_shard_intervals = m.gauge(
            "repro_shard_intervals", "Writer intervals held by one shard", ("shard",)
        )
        self._m_shard_ext_reads = m.gauge(
            "repro_shard_ext_reads", "External reads indexed by one shard", ("shard",)
        )
        self._m_shard_pending_removals = m.gauge(
            "repro_shard_pending_removals", "Deferred read removals owed to one shard", ("shard",)
        )
        self._m_shard_last_batch = m.gauge(
            "repro_shard_last_batch_commands",
            "Flat commands routed to one shard by the most recent batch",
            ("shard",),
        )
        self._m_lane_frames = m.counter(
            "repro_lane_frames_total",
            "Shard batches carried by shared-memory lane frames",
        )
        self._m_lane_fallbacks = m.counter(
            "repro_lane_fallbacks_total",
            "Shard batches that fell back to the pickled pipe path",
        )
        self._m_lane_heartbeat = m.gauge(
            "repro_shard_lane_heartbeat",
            "Lane consumer heartbeat sequence number for one shard",
            ("shard",),
        )
        self._m_lane_stalled = m.gauge(
            "repro_shard_lane_stalled",
            "1 when one shard's lane consumer looks wedged, else 0",
            ("shard",),
        )
        self._m_lane_backlog = m.gauge(
            "repro_shard_lane_backlog_bytes",
            "Unconsumed bytes across one shard's request and result rings",
            ("shard",),
        )
        self._m_lane_bytes = m.counter(
            "repro_shard_lane_bytes_total",
            "Bytes pushed through one shard's lane rings since startup",
            ("shard",),
        )

    def _render_metrics(self, stats: Dict[str, Any]) -> str:
        """Mirror a ``stats()`` snapshot into the registry and render it."""
        self._m_uptime.set(stats["uptime_s"])
        self._m_ingested.set_total(stats["received"])
        self._m_processed.set_total(stats["processed"])
        self._m_violations.set_total(stats["violations"])
        self._m_pushed.set_total(self.pushed_violations)
        self._m_ingest_errors.set_total(stats["ingest_errors"])
        self._m_queue_depth.set(stats["queue_depth"])
        self._m_queue_high_water.set(stats["queue_high_water"])
        self._m_queue_capacity.set(stats["queue_capacity"])
        self._m_resident.set(stats["resident_txns"])
        if stats["estimated_bytes"] is not None:
            self._m_resident_bytes.set(stats["estimated_bytes"])
        self._m_subscribers.set(stats["subscribers"])
        self._m_connections.set(stats["connections"])
        sessions = stats["sessions"]
        self._m_sessions_tracked.set(sessions["tracked"])
        self._m_sessions_issued.set_total(sessions["issued"])
        self._m_session_resumes.set_total(sessions["resumes"])
        self._m_resume_deduped.set_total(sessions["deduped_txns"])
        self._m_resume_rejected.set_total(sessions["rejected"])
        self._m_resume_recent.set(sessions["recent_resumes"])
        for codec, counters in stats["wire"].items():
            self._m_wire_frames.labels(codec, "in").set_total(counters["frames_in"])
            self._m_wire_frames.labels(codec, "out").set_total(counters["frames_out"])
            self._m_wire_bytes.labels(codec, "in").set_total(counters["bytes_in"])
            self._m_wire_bytes.labels(codec, "out").set_total(counters["bytes_out"])
            self._m_wire_errors.labels(codec).set_total(counters["decode_errors"])
        kernel = stats.get("kernel")
        if kernel is not None:
            self._m_kernel_batches.set_total(kernel["batches"])
            self._m_kernel_txns.set_total(kernel["txns"])
            for stage in (
                "route_ops",
                "probe_reads",
                "probe_writes",
                "verdict_tracks",
                "verdict_reevals",
                "verdict_conflicts",
            ):
                self._m_kernel_ops.labels(stage).set_total(kernel[stage])
            for stage in ("route", "probe", "verdict", "batch"):
                self._m_kernel_stage_seconds.labels(stage).set_total(
                    kernel[f"{stage}_seconds"]
                )
            self._m_kernel_timed.set_total(kernel["timed_batches"])
            self._m_kernel_slow.set_total(kernel["slow_batches"])
        self._m_scan_steps.set_total(stats["interval_scan_steps"])
        self._m_gc_scan_steps.set_total(stats["interval_gc_scan_steps"])
        self._m_gc_cycles.set_total(stats["gc"]["cycles"])
        self._m_gc_seconds.set_total(stats["gc"]["seconds"])
        self._m_gc_debt.set(stats["gc"]["debt"])
        for row in stats.get("shards") or ():
            shard = str(row["shard"])
            self._m_shard_versions.labels(shard).set(row["versions"])
            self._m_shard_intervals.labels(shard).set(row["intervals"])
            self._m_shard_ext_reads.labels(shard).set(row["ext_reads"])
            self._m_shard_pending_removals.labels(shard).set(row["pending_removals"])
            self._m_shard_last_batch.labels(shard).set(row["last_batch_commands"])
            if "lane_heartbeat" in row:
                self._m_lane_heartbeat.labels(shard).set(row["lane_heartbeat"])
                self._m_lane_stalled.labels(shard).set(row["lane_stalled"])
                self._m_lane_backlog.labels(shard).set(row["lane_backlog_bytes"])
                self._m_lane_bytes.labels(shard).set_total(row["lane_bytes"])
        lanes = stats.get("lanes")
        if lanes is not None:
            self._m_lane_frames.set_total(lanes["frames"])
            self._m_lane_fallbacks.set_total(lanes["fallbacks"])
        return self.metrics.render()

    # ------------------------------------------------------------------
    # HTTP sidecar handlers
    # ------------------------------------------------------------------

    async def _http_metrics(self) -> Tuple[int, str, bytes]:
        stats = await self._run_checker(self.stats, True)
        body = self._render_metrics(stats).encode("utf-8")
        return 200, "text/plain; version=0.0.4; charset=utf-8", body

    async def _http_health(self) -> Tuple[int, str, bytes]:
        ok, payload = self.health()
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return (200 if ok else 503), "application/json", body

    async def _http_stats(self) -> Tuple[int, str, bytes]:
        stats = await self._run_checker(self.stats, True)
        body = (json.dumps(stats, indent=2, default=str) + "\n").encode("utf-8")
        return 200, "application/json", body


class ServiceThread:
    """Host a :class:`CheckerService` on a dedicated background thread.

    The blocking client library cannot share a thread with the daemon's
    event loop; this helper gives tests, benchmarks, and synchronous
    embedders a daemon that behaves like a separate process::

        with ServiceThread(ServiceConfig(port=0)) as handle:
            client = CheckerClient(*handle.tcp_address)
            ...

    ``stop()`` performs the daemon's graceful drain-then-finalize
    shutdown and returns the final :class:`CheckResult` (also reachable
    afterwards as ``handle.service.final_result`` when a client already
    shut the daemon down over the wire).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service: Optional[CheckerService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service thread did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self.service = CheckerService(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.service.wait_closed()

    @property
    def tcp_address(self) -> Tuple[str, int]:
        assert self.service is not None and self.service.tcp_address is not None
        return self.service.tcp_address

    @property
    def http_address(self) -> Tuple[str, int]:
        assert self.service is not None and self.service.http_address is not None
        return self.service.http_address

    def stop(self, timeout: float = 30.0) -> Optional[CheckResult]:
        """Gracefully stop the daemon; returns the final result."""
        if self._thread is None or self.service is None:
            return None
        if self._thread.is_alive() and self._loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(self.service.shutdown(), self._loop)
                future.result(timeout)
            except RuntimeError:
                # The loop already exited (a client shut the daemon down).
                pass
        self._thread.join(timeout)
        return self.service.final_result

    def kill(self, timeout: float = 10.0) -> None:
        """Hard-stop the daemon — no drain, no finalize, no goodbyes.

        The chaos harness's stand-in for ``kill -9``: clients observe a
        dead socket mid-conversation and all daemon-side state (queued
        transactions, checker memory, session table) is lost.
        """
        if self._thread is None or self.service is None:
            return
        if self._thread.is_alive() and self._loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(self.service.abort(), self._loop)
                future.result(timeout)
            except RuntimeError:
                # The loop already exited (a client shut the daemon down).
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
