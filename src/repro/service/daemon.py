"""The asyncio checker daemon.

:class:`CheckerService` turns an in-process online checker into a
long-running network service — the continuous collector→checker loop of
the paper's deployment story (§IV-C, §VI): producers tail a database's
CDC/WAL stream and push committed transactions over the wire; the daemon
checks them as they arrive and pushes verdicts back.

Architecture::

    clients ──ndjson (v1)──▶ per-connection reader ──▶ bounded ingest queue
            ──frames (v2)──▶   (codec sniffed per         │ (backpressure,
                                message, first byte)      │  weighed in txns)
    subscribers ◀──violation push── drain task ◀──────────┘
                                       │  receive_many() batches,
                                       │  under the ingest lock, in a
                                       ▼  worker thread
                                 Aion / AionSer / ShardedAion

Protocol v2 submit frames arrive as :class:`ColumnarBatch` objects and
stay columnar all the way into ``receive_many`` — the daemon never
builds per-transaction dicts for them (see
:mod:`repro.service.protocol` for the wire contract and handshake).

Three properties carry the correctness story over from the library:

- **ordering** — each connection's transactions enter the queue in the
  order the client sent them, so a producer that ships its sessions in
  session order preserves the SESSION precondition (§III-C1) no matter
  how connections interleave;
- **backpressure** — the queue is bounded; when checking falls behind,
  readers stop consuming their sockets and producers block on TCP,
  instead of the daemon buffering unboundedly (the paper's collector
  applies the same admission discipline in batches);
- **serialized ingestion** — one drain task hands batches to
  ``receive_many`` under the checker's ingest lock, so the wire adds
  concurrency around the checker, never inside it, and verdicts are
  identical to in-process checking (``tests/test_service.py`` proves it
  differentially).

:class:`ServiceThread` hosts a daemon on a background thread with its
own event loop — the harness used by the blocking client's tests and the
wire-throughput benchmark, and a one-liner for embedding the service in
a synchronous program.
"""

from __future__ import annotations

import asyncio
import math
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.violations import CheckResult
from repro.histories.model import Transaction
from repro.histories.serialization import ColumnarBatch, txn_from_dict
from repro.online.metrics import ThroughputSeries
from repro.service.config import ServiceConfig
from repro.service.framing import (
    FRAME_MAGIC0,
    HEADER_SIZE,
    K_HELLO,
    SERVER_KIND_OF_TYPE,
    decode_frame_header,
    decode_frame_payload,
    encode_json_frame,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    result_to_dict,
    violation_to_dict,
)

__all__ = ["CheckerService", "ServiceThread"]

#: Maximum wire-line length (a submit batch of 500 wide transactions
#: stays well under this; the bound exists so one malformed producer
#: cannot balloon the reader's buffer).
_MAX_LINE_BYTES = 16 * 1024 * 1024

#: A subscriber whose transport buffer exceeds this is disconnected: the
#: drain loop never awaits a subscriber's socket, so a consumer that
#: stops reading must be shed — not allowed to stall all checking.
_MAX_SUBSCRIBER_BUFFER = 8 * 1024 * 1024

#: Violation pushes kept for late subscribers (``subscribe`` with
#: ``replay``).  Bounds daemon memory on a violation-heavy stream; a
#: replay delivers the most recent window, live pushes are never lost.
_MAX_REPLAY_BACKLOG = 10_000


class _IngestQueue:
    """A weight-bounded asyncio queue: capacity counts *transactions*.

    ``asyncio.Queue(maxsize=...)`` counts items, but the v2 wire path
    enqueues whole columnar batches as single items — an item-bounded
    queue would multiply its admission bound by the batch size.  Here
    every put declares a weight (1 for a bare transaction, ``len(batch)``
    for a columnar slice) and the capacity, ``join()``, and
    ``task_done()`` accounting are all in transactions, so backpressure
    bites at the same stream depth on both protocols.

    An item heavier than the whole capacity is admitted when the queue
    is idle — a producer must not deadlock on a frame the configuration
    can never fit.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._items: Deque[Tuple[Any, int]] = deque()
        self._size = 0  # queued weight
        self._unfinished = 0  # admitted weight not yet task_done()
        self._getters: Deque[asyncio.Future] = deque()
        self._putters: Deque[asyncio.Future] = deque()
        self._finished = asyncio.Event()
        self._finished.set()

    def qsize(self) -> int:
        return self._size

    def empty(self) -> bool:
        return not self._items

    async def put(self, item: Any, weight: int = 1) -> None:
        while self._size > 0 and self._size + weight > self._capacity:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._putters.append(fut)
            try:
                await fut
            except BaseException:
                try:
                    self._putters.remove(fut)
                except ValueError:
                    pass
                raise
        self.put_nowait(item, weight)

    def put_nowait(self, item: Any, weight: int = 1) -> None:
        self._items.append((item, weight))
        self._size += weight
        self._unfinished += weight
        self._finished.clear()
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done():
                fut.set_result(None)
                break

    async def get(self) -> Tuple[Any, int]:
        while not self._items:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._getters.append(fut)
            try:
                await fut
            except BaseException:
                try:
                    self._getters.remove(fut)
                except ValueError:
                    pass
                raise
        return self.get_nowait()

    def get_nowait(self) -> Tuple[Any, int]:
        if not self._items:
            raise asyncio.QueueEmpty
        item, weight = self._items.popleft()
        self._size -= weight
        # Wake every waiting putter; each re-checks the capacity and the
        # ones that still do not fit simply wait again.
        while self._putters:
            fut = self._putters.popleft()
            if not fut.done():
                fut.set_result(None)
        return item, weight

    def task_done(self, weight: int = 1) -> None:
        self._unfinished -= weight
        if self._unfinished <= 0:
            self._unfinished = 0
            self._finished.set()

    async def join(self) -> None:
        if self._unfinished > 0:
            await self._finished.wait()


class CheckerService:
    """One daemon instance: listeners, ingest queue, drain loop."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self.checker = self.config.build_checker()
        # ShardedAion exposes its own ingest lock; the single-shard
        # checkers get one here.  Every checker touch below — ingest,
        # poll, stats reads, GC, finalize — happens under this lock, so
        # worker-thread ingestion and loop-thread reads never interleave.
        self._lock: threading.Lock = getattr(self.checker, "ingest_lock", None) or threading.Lock()
        self._queue: Optional[_IngestQueue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._subscribers: Set[asyncio.StreamWriter] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._shutting_down = False
        self._shutdown_done: Optional[asyncio.Task] = None
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.unix_path: Optional[str] = None
        self.final_result: Optional[CheckResult] = None
        self.started_at = time.monotonic()
        self.received = 0
        self.pushed_violations = 0
        self.gc_cycles = 0
        self.gc_seconds = 0.0
        self.ingest_errors = 0
        self.last_ingest_error: Optional[str] = None
        self.throughput = ThroughputSeries()
        #: Violation messages handed to _broadcast, in push order — the
        #: replay backlog for late subscribers.  Maintained on the event
        #: loop so subscribe-with-replay can snapshot it and join
        #: _subscribers without an await in between (atomic w.r.t.
        #: broadcasts: no duplicate, no missed push).  Bounded: oldest
        #: entries fall off a violation-heavy stream.
        self._violation_log: Deque[Dict[str, Any]] = deque(maxlen=_MAX_REPLAY_BACKLOG)
        #: ThroughputSeries is written by the drain loop (event-loop
        #: thread) and snapshotted by stats() (worker thread).
        self._throughput_lock = threading.Lock()
        #: Connections that completed the v2 handshake; absent = v1.
        #: Only the send side consults this — the reader sniffs each
        #: incoming message's codec from its first byte.
        self._conn_proto: Dict[asyncio.StreamWriter, int] = {}
        #: Per-codec wire counters, exported as ``stats()["wire"]``.
        #: Touched only from the event-loop thread (reads from stats()
        #: may tear across keys, which is fine for monotonic counters).
        self.wire: Dict[str, Dict[str, int]] = {
            codec: {
                "frames_in": 0,
                "bytes_in": 0,
                "frames_out": 0,
                "bytes_out": 0,
                "decode_errors": 0,
            }
            for codec in ("v1", "v2")
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured listeners and start the drain loop."""
        self._queue = _IngestQueue(self.config.queue_capacity)
        self.started_at = time.monotonic()
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=_MAX_LINE_BYTES,
            )
            self._servers.append(server)
            self.tcp_address = server.sockets[0].getsockname()[:2]
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.config.unix_path),
                limit=_MAX_LINE_BYTES,
            )
            self._servers.append(server)
            self.unix_path = str(self.config.unix_path)
        self._drain_task = asyncio.get_running_loop().create_task(self._drain_loop())
        if math.isfinite(self.config.timeout):
            # A finite EXT timeout arms real-clock deadlines that must
            # fire even when no transactions arrive — the drain loop only
            # polls after a batch, so an idle wire needs this tick.
            self._tick_task = asyncio.get_running_loop().create_task(self._tick_loop())

    async def wait_closed(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self) -> CheckResult:
        """Graceful stop: drain, finalize, broadcast, disconnect.

        Safe to call more than once (later callers await the first
        shutdown and receive the same final result).
        """
        if self._shutting_down:
            assert self._shutdown_done is not None
            return await asyncio.shield(self._shutdown_done)
        self._shutting_down = True
        self._shutdown_done = asyncio.get_running_loop().create_task(self._shutdown_impl())
        return await asyncio.shield(self._shutdown_done)

    async def _shutdown_impl(self) -> CheckResult:
        # However shutdown ends — cleanly or with a raising finalize /
        # broadcast / close — _stopped must be set, or wait_closed()
        # (and `repro serve`, and ServiceThread.stop()) hangs forever on
        # a daemon that can no longer recover.
        try:
            return await self._shutdown_steps()
        finally:
            self._stopped.set()

    async def _shutdown_steps(self) -> CheckResult:
        # Stop accepting new connections.  Server.wait_closed() is never
        # awaited: since Python 3.12.1 it blocks until every connection
        # handler returns, and this coroutine is typically awaited *by*
        # a handler (a wire shutdown request) — a circular wait.  close()
        # alone already closes the listening sockets; remaining handler
        # cleanup happens when the loop exits.
        for server in self._servers:
            server.close()
        # Drain everything already admitted, then stop the drain loop.
        assert self._queue is not None
        await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
        # A submit handler suspended on a full queue can slip transactions
        # in after join() returned (its blocked put resumes once slots
        # free up).  They were acked, so they must be checked: keep
        # flushing until the queue stays empty across an event-loop
        # yield, which gives every woken putter its final turn.
        while True:
            leftovers: List[Tuple[Any, int]] = []
            total = 0
            while True:
                try:
                    item, weight = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                leftovers.append((item, weight))
                total += weight
            if leftovers:
                try:
                    for group in self._coalesce(leftovers):
                        await self._run_checker(self._ingest_locked, group)
                except Exception as exc:
                    self.ingest_errors += 1
                    self.last_ingest_error = f"{type(exc).__name__}: {exc}"
                self._queue.task_done(total)
                continue
            await asyncio.sleep(0)
            if self._queue.empty():
                break
        result = await self._run_checker(self._finalize_locked)
        self.final_result = result
        await self._broadcast(await self._run_checker(self._fresh_violation_messages))
        # Every open connection — subscribed or not — receives the final
        # result before its socket closes, so a client that requested the
        # shutdown reads the verdict it asked for.
        farewell = {"type": "result", **result_to_dict(result)}
        for writer in list(self._connections):
            self._send(writer, farewell)
            self._send(writer, {"type": "bye"})
        for writer in list(self._connections):
            self._close_writer(writer)
        close = getattr(self.checker, "close", None)
        if close is not None:
            await self._run_checker(self._locked, close)
        return result

    def _finalize_locked(self) -> CheckResult:
        with self._lock:
            return self.checker.finalize()

    def _locked(self, fn, *args: Any) -> Any:
        """Run ``fn`` under the ingest lock (for worker-thread dispatch).

        Every checker touch goes through a worker thread rather than
        acquiring the lock on the event loop: a large batch can hold the
        lock for a long time, and the loop must keep serving pings,
        stats, and fresh submissions meanwhile.
        """
        with self._lock:
            return fn(*args)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    async def _drain_loop(self) -> None:
        """Pull queued transactions, check them in batches, push verdicts."""
        assert self._queue is not None
        queue = self._queue
        batch_size = self.config.batch_size
        while True:
            item, weight = await queue.get()
            items: List[Tuple[Any, int]] = [(item, weight)]
            total = weight
            while total < batch_size:
                try:
                    item, weight = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                items.append((item, weight))
                total += weight
            try:
                try:
                    # One worker-thread hop checks every coalesced group
                    # AND polls for fresh violations — per-group dispatch
                    # plus a separate poll hop measurably costs wire
                    # throughput under GIL contention.
                    fresh = await self._run_checker(
                        self._ingest_groups_locked, self._coalesce(items)
                    )
                except Exception as exc:
                    # A rejected batch (e.g. a submitted append operation,
                    # which the online checkers refuse) must not kill the
                    # drain task — that would wedge every later drain /
                    # finalize / shutdown on queue.join().  Drop the
                    # batch, count it, keep draining.
                    self.ingest_errors += 1
                    self.last_ingest_error = f"{type(exc).__name__}: {exc}"
                    print(
                        f"repro.service: dropped a {total}-transaction batch: "
                        f"{self.last_ingest_error}",
                        file=sys.stderr,
                    )
                else:
                    with self._throughput_lock:
                        self.throughput.record(
                            time.monotonic() - self.started_at, total
                        )
                    try:
                        await self._maybe_collect()
                        await self._broadcast(fresh)
                    except Exception as exc:
                        # GC (which may spill to disk) or a push failing
                        # must not kill the drain task either — the batch
                        # was checked; losing a collection cycle or a
                        # push is recoverable, a dead drain task is not.
                        print(
                            f"repro.service: post-ingest step failed: "
                            f"{type(exc).__name__}: {exc}",
                            file=sys.stderr,
                        )
            finally:
                queue.task_done(total)

    @staticmethod
    def _coalesce(items: List[Tuple[Any, int]]) -> List[Any]:
        """Group drained queue entries into ``receive_many()`` calls.

        Runs of bare transactions merge into one list; a columnar batch
        is already a batch and passes through whole.  Arrival order is
        preserved across groups — that is what keeps wire verdicts
        identical to in-process checking when v1 and v2 producers mix.
        """
        groups: List[Any] = []
        run: Optional[List[Transaction]] = None
        for item, _ in items:
            if isinstance(item, ColumnarBatch):
                groups.append(item)
                run = None
            else:
                if run is None:
                    run = []
                    groups.append(run)
                run.append(item)
        return groups

    async def _tick_loop(self) -> None:
        """Fire due EXT-timeout verdicts while the wire is idle.

        ``poll()`` is the only place the EXT timer queue advances outside
        ingestion; without this tick a quiet stream would sit on expired
        timers until the next submit or finalize.
        """
        while True:
            await asyncio.sleep(self.config.poll_interval)
            try:
                await self._broadcast(await self._run_checker(self._fresh_violation_messages))
            except Exception as exc:
                print(
                    f"repro.service: idle poll failed: {type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )

    def _ingest_locked(self, batch: Any) -> None:
        # ``batch`` is a list of transactions or a ColumnarBatch; the
        # checkers' receive_many accepts both.
        # ShardedAion ships its own thread-safe entry point (guarded by
        # the same ingest_lock the daemon uses for every other touch);
        # the single-shard checkers are wrapped here.
        receive = getattr(self.checker, "receive_many_threadsafe", None)
        if receive is not None:
            receive(batch)
        else:
            with self._lock:
                self.checker.receive_many(batch)

    def _ingest_groups_locked(self, groups: List[Any]) -> List[Dict[str, Any]]:
        """Check every coalesced group, then poll — one executor trip.

        A raised ingest error drops this drain cycle's remaining groups
        (matching the old per-group dispatch, where the first failure
        skipped the rest) and leaves any fresh violations to the next
        cycle's poll.
        """
        receive = getattr(self.checker, "receive_many_threadsafe", None)
        if receive is not None:
            for group in groups:
                receive(group)
        else:
            with self._lock:
                for group in groups:
                    self.checker.receive_many(group)
        return self._fresh_violation_messages()

    async def _run_checker(self, fn, *args: Any) -> Any:
        """Run a checker-touching callable on a worker thread.

        Keeps the event loop responsive while a batch is checked — other
        connections keep submitting (until the queue bound bites) and
        stats/ping stay answerable.
        """
        return await asyncio.get_running_loop().run_in_executor(None, fn, *args)

    async def _maybe_collect(self) -> None:
        if self.config.gc_threshold <= 0:
            return
        report = await self._run_checker(self._collect_locked)
        if report is not None:
            self.gc_cycles += 1
            self.gc_seconds += report.seconds

    def _collect_locked(self):
        with self._lock:
            if self.checker.resident_txn_count < self.config.gc_threshold:
                return None
            target = self.checker.suggest_gc_ts(
                keep_recent=self.config.effective_gc_keep_recent
            )
            if target is None:
                return None
            return self.checker.collect_below(target)

    def _fresh_violation_messages(self) -> List[Dict[str, Any]]:
        with self._lock:
            fresh = self.checker.poll()
        self.pushed_violations += len(fresh)
        return [{"type": "violation", "violation": violation_to_dict(v)} for v in fresh]

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _welcome_message(self, version: int) -> Dict[str, Any]:
        offered = [1] if self.config.protocol == "v1" else [1, 2]
        return {
            "type": "welcome",
            "protocol": version,
            "protocols": offered,
            "checker": self.config.checker_kind,
            "level": self.config.level,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        v2_enabled = self.config.protocol != "v1"
        # The opening welcome is always a v1 line: a client cannot know
        # the server speaks v2 until this advertisement arrives.
        self._send(writer, self._welcome_message(PROTOCOL_VERSION))
        try:
            while True:
                # One byte of lookahead classifies the next message:
                # 0xA6 can never start an ndjson line, so it means a v2
                # frame; anything else is the first byte of a line.
                try:
                    first = await reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == FRAME_MAGIC0:
                    wire = self.wire["v2"]
                    if not v2_enabled:
                        wire["decode_errors"] += 1
                        self._send(
                            writer,
                            {"type": "error", "message": "protocol v2 is disabled"},
                        )
                        break
                    try:
                        header = first + await reader.readexactly(HEADER_SIZE - 1)
                    except asyncio.IncompleteReadError:
                        wire["decode_errors"] += 1
                        break
                    try:
                        frame_kind, length = decode_frame_header(header)
                    except ProtocolError as exc:
                        # A bad header means the stream position is lost;
                        # binary framing cannot resync, so close.
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        break
                    try:
                        payload = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        wire["decode_errors"] += 1
                        break
                    wire["frames_in"] += 1
                    wire["bytes_in"] += HEADER_SIZE + length
                    try:
                        message = decode_frame_payload(frame_kind, payload)
                    except ProtocolError as exc:
                        # The framing survived (length was honoured), so
                        # the connection can too — reject this message.
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        continue
                    if frame_kind == K_HELLO:
                        # v2 handshake: flip this connection's send side
                        # to frames, confirm with a framed welcome.
                        self._conn_proto[writer] = 2
                        self._send(writer, self._welcome_message(2))
                        continue
                else:
                    try:
                        rest = await reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        self._send(writer, {"type": "error", "message": "line too long"})
                        break
                    line = first + rest
                    wire = self.wire["v1"]
                    wire["bytes_in"] += len(line)
                    line = line.strip()
                    if not line:
                        continue
                    wire["frames_in"] += 1
                    try:
                        message = decode_line(line)
                    except ProtocolError as exc:
                        wire["decode_errors"] += 1
                        self._send(writer, {"type": "error", "message": str(exc)})
                        continue
                if not await self._dispatch(message, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._subscribers.discard(writer)
            self._connections.discard(writer)
            self._conn_proto.pop(writer, None)
            self._close_writer(writer)

    async def _dispatch(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns False to close the connection."""
        kind = message["type"]
        seq = message.get("seq")
        if kind == "hello":
            return True
        if kind == "ping":
            self._send(writer, {"type": "pong", "seq": seq})
            return True
        if kind == "submit":
            return await self._handle_submit(message, writer)
        if kind == "subscribe":
            reply: Dict[str, Any] = {"type": "subscribed", "seq": seq}
            self._send(writer, reply)
            if message.get("replay"):
                # Backlog then membership, with no await in between —
                # broadcasts run on this same loop, so the backlog and
                # the live stream partition exactly.
                for push in self._violation_log:
                    self._send(writer, push)
            self._subscribers.add(writer)
            return True
        if kind == "stats":
            include_bytes = bool(message.get("bytes", True))
            stats = await self._run_checker(self.stats, include_bytes)
            self._send(writer, {"type": "stats", "seq": seq, "stats": stats})
            return True
        if kind == "drain":
            assert self._queue is not None
            await self._queue.join()
            processed = await self._run_checker(self._locked, lambda: self.checker.processed)
            self._send(writer, {"type": "drained", "seq": seq, "processed": processed})
            return True
        if kind == "finalize":
            assert self._queue is not None
            await self._queue.join()
            result = await self._run_checker(self._finalize_locked)
            await self._broadcast(await self._run_checker(self._fresh_violation_messages))
            self._send(writer, {"type": "result", "seq": seq, **result_to_dict(result)})
            return True
        if kind == "shutdown":
            # shutdown() sends the final result and a bye to every open
            # connection (this one included) before closing the sockets.
            await self.shutdown()
            return False
        self._send(writer, {"type": "error", "seq": seq, "message": f"unknown message type {kind!r}"})
        return True

    async def _handle_submit(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> bool:
        seq = message.get("seq")
        if self._shutting_down:
            self._send(writer, {"type": "error", "seq": seq, "message": "service is shutting down"})
            return True
        batch = message.get("batch")
        if batch is not None:
            # v2 vectored submit: the frame decoded straight into a
            # ColumnarBatch.  Slice it to the checker's batch size and
            # enqueue the slices whole — they stay columnar through the
            # drain loop into receive_many.
            if len(batch) == 0:
                self._send(
                    writer,
                    {"type": "error", "seq": seq, "message": "submit carries no transactions"},
                )
                return True
            assert self._queue is not None
            total = len(batch)
            admitted = 0
            for piece in batch.slices(self.config.batch_size):
                # Re-checked per slice: a shutdown can start while this
                # handler is suspended on a full queue.
                if self._shutting_down:
                    break
                await self._queue.put(piece, len(piece))
                admitted += len(piece)
            self.received += admitted
            if admitted < total:
                if seq is not None:
                    self._send(
                        writer,
                        {
                            "type": "error",
                            "seq": seq,
                            "message": f"service is shutting down; "
                            f"admitted {admitted} of {total} transactions",
                        },
                    )
            elif seq is not None:
                self._send(writer, {"type": "ack", "seq": seq, "enqueued": admitted})
            return True
        raw = message.get("txns")
        if raw is None:
            single = message.get("txn")
            raw = [single] if single is not None else None
        if not isinstance(raw, list) or not raw:
            self._send(
                writer,
                {"type": "error", "seq": seq, "message": "submit carries no transactions"},
            )
            return True
        try:
            txns = [txn_from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError) as exc:
            self._send(
                writer,
                {"type": "error", "seq": seq, "message": f"malformed transaction: {exc!r}"},
            )
            return True
        assert self._queue is not None
        admitted = 0
        for txn in txns:
            # Re-checked per transaction: a shutdown can start while this
            # handler is suspended on a full queue, and transactions
            # admitted past that point race the final drain.
            if self._shutting_down:
                break
            # Admission blocks when the queue is full: this reader stops
            # consuming its socket and the producer sees TCP backpressure.
            await self._queue.put(txn)
            admitted += 1
        self.received += admitted
        if admitted < len(txns):
            if seq is not None:
                self._send(
                    writer,
                    {
                        "type": "error",
                        "seq": seq,
                        "message": f"service is shutting down; "
                        f"admitted {admitted} of {len(txns)} transactions",
                    },
                )
        elif seq is not None:
            self._send(writer, {"type": "ack", "seq": seq, "enqueued": admitted})
        return True

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def _send(self, writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        if writer.is_closing():
            return
        try:
            if self._conn_proto.get(writer) == 2:
                data = encode_json_frame(SERVER_KIND_OF_TYPE[message["type"]], message)
                wire = self.wire["v2"]
            else:
                data = encode_message(message)
                wire = self.wire["v1"]
            writer.write(data)
            wire["frames_out"] += 1
            wire["bytes_out"] += len(data)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            self._subscribers.discard(writer)

    async def _broadcast(self, messages: List[Dict[str, Any]]) -> None:
        """Push ``messages`` to every subscriber without ever blocking.

        Never awaits a subscriber's socket — a consumer that stops
        reading must not stall checking for everyone else.  Bytes queue
        in the transport; a subscriber whose buffer outgrows
        :data:`_MAX_SUBSCRIBER_BUFFER` is shed instead of waited on.
        """
        self._violation_log.extend(messages)
        if not messages or not self._subscribers:
            return
        # One payload per codec, built lazily: most daemons have all
        # their subscribers on one protocol.
        payload_v1: Optional[bytes] = None
        payload_v2: Optional[bytes] = None
        for writer in list(self._subscribers):
            if writer.is_closing():
                self._subscribers.discard(writer)
                continue
            if self._conn_proto.get(writer) == 2:
                if payload_v2 is None:
                    payload_v2 = b"".join(
                        encode_json_frame(SERVER_KIND_OF_TYPE["violation"], m)
                        for m in messages
                    )
                payload = payload_v2
                wire = self.wire["v2"]
            else:
                if payload_v1 is None:
                    payload_v1 = b"".join(encode_message(m) for m in messages)
                payload = payload_v1
                wire = self.wire["v1"]
            try:
                writer.write(payload)
                wire["frames_out"] += len(messages)
                wire["bytes_out"] += len(payload)
                if writer.transport.get_write_buffer_size() > _MAX_SUBSCRIBER_BUFFER:
                    self._subscribers.discard(writer)
                    self._close_writer(writer)
                    print(
                        "repro.service: dropped a subscriber that stopped reading",
                        file=sys.stderr,
                    )
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                self._subscribers.discard(writer)

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            if not writer.is_closing():
                writer.close()
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self, include_bytes: bool = True) -> Dict[str, Any]:
        """Counters for the ``STATS`` request (and the CLI's summary).

        ``include_bytes=False`` skips ``estimated_bytes`` (a deep sizeof
        walk over all resident state, O(resident txns) under the ingest
        lock) — the cheap mode for a monitoring poller on a hot daemon;
        the wire request opts out with ``{"type": "stats", "bytes": false}``.
        """
        with self._lock:
            resident = self.checker.resident_txn_count
            processed = self.checker.processed
            violations = len(self.checker.result.violations)
            estimated_bytes = self.checker.estimated_bytes() if include_bytes else None
            # Batch-kernel checkers expose per-stage op counters; offline
            # wrappers (Chronos) do not — report null rather than omit so
            # pollers see a stable schema.
            kernel_stats = getattr(self.checker, "kernel_stats", None)
            kernel = kernel_stats.as_dict() if kernel_stats is not None else None
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        with self._throughput_lock:
            throughput = self.throughput.snapshot()
        return {
            "protocol": PROTOCOL_VERSION,
            "protocols": [1] if self.config.protocol == "v1" else [1, 2],
            "wire": {codec: dict(counters) for codec, counters in self.wire.items()},
            "checker": self.config.checker_kind,
            "level": self.config.level,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "received": self.received,
            "processed": processed,
            "queue_depth": queue_depth,
            "resident_txns": resident,
            "violations": violations,
            "subscribers": len(self._subscribers),
            "connections": len(self._connections),
            "estimated_bytes": estimated_bytes,
            "ingest_errors": self.ingest_errors,
            "last_ingest_error": self.last_ingest_error,
            "throughput": throughput,
            "kernel": kernel,
            "gc": {
                "cycles": self.gc_cycles,
                "seconds": round(self.gc_seconds, 6),
                "threshold": self.config.gc_threshold,
            },
        }


class ServiceThread:
    """Host a :class:`CheckerService` on a dedicated background thread.

    The blocking client library cannot share a thread with the daemon's
    event loop; this helper gives tests, benchmarks, and synchronous
    embedders a daemon that behaves like a separate process::

        with ServiceThread(ServiceConfig(port=0)) as handle:
            client = CheckerClient(*handle.tcp_address)
            ...

    ``stop()`` performs the daemon's graceful drain-then-finalize
    shutdown and returns the final :class:`CheckResult` (also reachable
    afterwards as ``handle.service.final_result`` when a client already
    shut the daemon down over the wire).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service: Optional[CheckerService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service thread did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self.service = CheckerService(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.service.wait_closed()

    @property
    def tcp_address(self) -> Tuple[str, int]:
        assert self.service is not None and self.service.tcp_address is not None
        return self.service.tcp_address

    def stop(self, timeout: float = 30.0) -> Optional[CheckResult]:
        """Gracefully stop the daemon; returns the final result."""
        if self._thread is None or self.service is None:
            return None
        if self._thread.is_alive() and self._loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(self.service.shutdown(), self._loop)
                future.result(timeout)
            except RuntimeError:
                # The loop already exited (a client shut the daemon down).
                pass
        self._thread.join(timeout)
        return self.service.final_result

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
