"""The checker service's wire protocol: ndjson (v1) and binary frames (v2).

Two codecs share one port and one message vocabulary:

**v1 — ndjson.**  Every message is a single JSON object terminated by
``\\n`` (UTF-8, no embedded newlines) — the same framing the history
files use, so a producer that can append to a JSONL history can speak to
the daemon with a two-line change.  Each object carries a ``type``
field; everything else is type-specific.

**v2 — length-prefixed binary frames** (:mod:`repro.service.framing`)::

    0      1      2      3      4              8
    +------+------+------+------+--------------+----------------+
    | 0xA6 | 0x52 | ver  | kind |  length u32  | payload ...    |
    +------+------+------+------+--------------+----------------+

``0xA6`` is a UTF-8 continuation byte, so it can never start an ndjson
line: the reader classifies every incoming message by its first byte,
and a single connection may even interleave the two codecs.  Control
messages (everything below except ``submit``) carry their v1 JSON object
verbatim as the frame payload; only ``submit`` is binary — a u32 ack
sequence number followed by a columnar pack
(:func:`repro.histories.serialization.pack_columnar`) that struct-packs
the batch's tids/sids/snos/timestamps as flat arrays, interns keys in a
per-frame string table, and tags values with 1-byte type codes.  The
daemon decodes that blob directly into the batch kernel's columnar
layout without building per-transaction dicts, which is where v2's
throughput win comes from.

Handshake
---------
The server always opens with a v1 ``welcome`` line advertising
``"protocols": [1, 2]`` (or ``[1]`` when v2 is disabled).  A connection
stays in v1 unless the client sends a v2 ``hello`` *frame*; the server
then answers with a v2 ``welcome`` frame and switches its send side to
frames for that connection.  Clients preferring v2 must fall back to v1
when the server only advertises ``[1]``.

Sessions and resume
-------------------
A v2 ``hello`` may additionally carry ``"session_token"`` (a lowercase
hex string previously issued by the daemon, or ``null`` to open a new
session) and optionally ``"resume_from"`` (the client's highest acked
submit sequence number, cross-checked against the daemon's watermark).
The daemon answers with a ``"session"`` object inside the v2
``welcome``::

    {"session": {"token": "…", "acked_seq": N, "resumed": true|false}}

``acked_seq`` is the daemon's per-session watermark: the highest submit
``seq`` it has admitted *in full* for that token.  On reconnect the
client drops every locally buffered batch with ``seq <= acked_seq``
(the batch was ingested; only the ack was lost) and re-submits the
rest with their *original* sequence numbers.  The daemon dedups by
``(session_token, seq)`` — a resubmitted ``seq`` at or below the
watermark is acked again (``"duplicate": true``) without re-entering
the ingest queue, which makes reconnect-and-replay exactly-once.
Tokens are daemon-issued only (an unknown well-formed token opens a
*fresh* session — the daemon that issued it is gone); a malformed
token or a ``resume_from`` ahead of the daemon's watermark is rejected
with an ``error`` reply and no session.  Session state is in-memory
and bounded (:data:`MAX_TRACKED_SESSIONS` least-recently-used entries).

Prefer v1 when debugging (messages are greppable and can be spoken with
``nc``/``telnet``), when producing from tools that only know JSON, or
for interop with pre-v2 daemons; prefer v2 for throughput — bulk
``submit`` traffic is both smaller on the wire and far cheaper to
decode.

Client → server
---------------
============  =====================================================
``hello``     optional greeting: ``{"client": str}``
``submit``    ``{"txns": [txn, ...]}`` or ``{"txn": txn}``; an
              optional ``seq`` requests an ``ack`` once the batch is
              *enqueued* (admission, not checking — verdicts arrive
              via ``subscribe``/``finalize``)
``subscribe`` start pushing ``violation`` messages to this
              connection; ``{"replay": true}`` also replays
              violations reported before the subscription
``stats``     ``{"seq": n}`` → one ``stats`` reply
``drain``     ``{"seq": n}`` → ``drained`` once every transaction
              enqueued so far has been checked
``finalize``  ``{"seq": n}`` → drain, force-finalize pending EXT
              verdicts, reply with a ``result``
``shutdown``  graceful stop: drain, finalize, broadcast the final
              ``result``, reply ``bye``, exit
``ping``      ``{"seq": n}`` → ``pong``
============  =====================================================

Server → client
---------------
============  =====================================================
``welcome``   first message on every connection: protocol version,
              checker kind, isolation level
``ack``       ``{"seq": n, "enqueued": k}``
``violation`` one checked-and-reported violation, pushed live
``stats``     resident/throughput/GC counters (see
              :meth:`repro.service.daemon.CheckerService.stats`)
``drained``   ``{"seq": n, "processed": k}``
``result``    ``{"valid": bool, "summary": str, "violations": [...]}``
``pong``      ``{"seq": n}``
``error``     ``{"message": str, "seq": n?}`` — the connection
              survives; only the offending request is rejected
``bye``       the server is closing this connection
============  =====================================================

Transactions travel in the exact dict form of
:mod:`repro.histories.serialization` (``txn_to_dict``/``txn_from_dict``),
so WAL files, history files, and wire traffic share one schema.
Violations are encoded by :func:`violation_to_dict`; snapshot values may
be the unreadable ⊥v or tuples, which JSON cannot represent natively —
:func:`value_to_wire` tags them (``{"$": "bottom"}`` /
``{"$": "tuple", "items": [...]}``; plain JSON-object values are wrapped
as ``{"$": "obj", "value": {...}}`` so they cannot collide with tags)
and :func:`value_from_wire` restores the originals exactly.
"""

from __future__ import annotations

import json
import re
import secrets
from typing import Any, Dict, List

from repro.core.common import BOTTOM
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    SessionViolation,
    TimestampOrderViolation,
    Violation,
)

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSIONS",
    "MAX_TRACKED_SESSIONS",
    "ProtocolError",
    "new_session_token",
    "validate_session_token",
    "encode_message",
    "decode_line",
    "value_to_wire",
    "value_from_wire",
    "violation_to_dict",
    "violation_from_dict",
    "result_to_dict",
    "result_from_dict",
]

PROTOCOL_VERSION = 1

#: Every protocol revision this codebase can speak.  The binary v2 frame
#: codec lives in :mod:`repro.service.framing` (a sibling rather than an
#: import here, so the v1 codec keeps zero framing dependencies).
PROTOCOL_VERSIONS = (1, 2)

#: Message types a conforming server accepts.
CLIENT_MESSAGE_TYPES = frozenset(
    {"hello", "submit", "subscribe", "stats", "drain", "finalize", "shutdown", "ping"}
)
#: Message types a conforming client must tolerate.
SERVER_MESSAGE_TYPES = frozenset(
    {"welcome", "ack", "violation", "stats", "drained", "result", "pong", "error", "bye",
     "subscribed"}
)


class ProtocolError(ValueError):
    """A malformed or out-of-contract wire message."""


# ----------------------------------------------------------------------
# Session tokens (idempotent reconnect/resume)
# ----------------------------------------------------------------------

#: Upper bound on daemon-tracked resume sessions; the oldest-touched
#: session is evicted past this, so a token-churning client cannot grow
#: daemon memory without bound.
MAX_TRACKED_SESSIONS = 1024

#: Token grammar: lowercase hex, 8–64 chars.  Wide enough for 256-bit
#: tokens, tight enough that the daemon can reject a forged or corrupted
#: token from its shape alone.
_SESSION_TOKEN_RE = re.compile(r"^[0-9a-f]{8,64}$")


def new_session_token() -> str:
    """Mint a fresh 128-bit session token (lowercase hex)."""
    return secrets.token_hex(16)


def validate_session_token(token: Any) -> str:
    """Return ``token`` when it matches the wire grammar, else raise.

    Raises :class:`ProtocolError` for anything that is not a lowercase
    hex string of 8–64 characters — the daemon rejects malformed resume
    attempts from the token's shape, before touching its session table.
    """
    if not isinstance(token, str) or not _SESSION_TOKEN_RE.match(token):
        raise ProtocolError(f"malformed session token {token!r}")
    return token


def encode_message(message: Dict[str, Any]) -> bytes:
    """Render one message as an ndjson line (including the newline)."""
    return json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict, validating the envelope."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message lacks a string 'type' field")
    return message


# ----------------------------------------------------------------------
# Value encoding: ⊥v and tuples survive the JSON round trip
# ----------------------------------------------------------------------

def value_to_wire(value: Any) -> Any:
    if value is BOTTOM:
        return {"$": "bottom"}
    if isinstance(value, tuple):
        return {"$": "tuple", "items": [value_to_wire(item) for item in value]}
    if isinstance(value, dict):
        # Plain JSON-object values must be wrapped too, or the decoder
        # would read them as (unknown) tags — and a value legitimately
        # containing a "$" key would be misinterpreted.
        return {"$": "obj", "value": value}
    return value


def value_from_wire(wire: Any) -> Any:
    if isinstance(wire, dict):
        tag = wire.get("$")
        if tag == "bottom":
            return BOTTOM
        if tag == "tuple":
            return tuple(value_from_wire(item) for item in wire["items"])
        if tag == "obj":
            return wire["value"]
        raise ProtocolError(f"unknown value tag {tag!r}")
    return wire


# ----------------------------------------------------------------------
# Violation encoding
# ----------------------------------------------------------------------

_KIND_SESSION = "session"
_KIND_INT = "int"
_KIND_EXT = "ext"
_KIND_CONFLICT = "conflict"
_KIND_TS_ORDER = "ts_order"
_KIND_BASE = "violation"


def violation_to_dict(violation: Violation) -> Dict[str, Any]:
    """Encode one violation record for the wire."""
    base = {"axiom": violation.axiom.value, "tid": violation.tid}
    if isinstance(violation, SessionViolation):
        base.update(
            kind=_KIND_SESSION,
            sid=violation.sid,
            expected_sno=violation.expected_sno,
            actual_sno=violation.actual_sno,
            start_ts=violation.start_ts,
            last_commit_ts=violation.last_commit_ts,
        )
    elif isinstance(violation, IntViolation):
        base.update(
            kind=_KIND_INT,
            key=violation.key,
            expected=value_to_wire(violation.expected),
            actual=value_to_wire(violation.actual),
        )
    elif isinstance(violation, ExtViolation):
        base.update(
            kind=_KIND_EXT,
            key=violation.key,
            expected=value_to_wire(violation.expected),
            actual=value_to_wire(violation.actual),
        )
    elif isinstance(violation, ConflictViolation):
        base.update(
            kind=_KIND_CONFLICT,
            key=violation.key,
            conflicting_tids=sorted(violation.conflicting_tids),
        )
    elif isinstance(violation, TimestampOrderViolation):
        base.update(kind=_KIND_TS_ORDER, start_ts=violation.start_ts, commit_ts=violation.commit_ts)
    else:
        base.update(kind=_KIND_BASE)
    return base


def violation_from_dict(data: Dict[str, Any]) -> Violation:
    """Decode a violation record; inverse of :func:`violation_to_dict`."""
    try:
        axiom = Axiom(data["axiom"])
        tid = data["tid"]
        kind = data.get("kind", _KIND_BASE)
        if kind == _KIND_SESSION:
            return SessionViolation(
                axiom=axiom,
                tid=tid,
                sid=data["sid"],
                expected_sno=data["expected_sno"],
                actual_sno=data["actual_sno"],
                start_ts=data["start_ts"],
                last_commit_ts=data["last_commit_ts"],
            )
        if kind == _KIND_INT:
            return IntViolation(
                axiom=axiom,
                tid=tid,
                key=data["key"],
                expected=value_from_wire(data["expected"]),
                actual=value_from_wire(data["actual"]),
            )
        if kind == _KIND_EXT:
            return ExtViolation(
                axiom=axiom,
                tid=tid,
                key=data["key"],
                expected=value_from_wire(data["expected"]),
                actual=value_from_wire(data["actual"]),
            )
        if kind == _KIND_CONFLICT:
            return ConflictViolation(
                axiom=axiom,
                tid=tid,
                key=data["key"],
                conflicting_tids=frozenset(data["conflicting_tids"]),
            )
        if kind == _KIND_TS_ORDER:
            return TimestampOrderViolation(
                axiom=axiom, tid=tid, start_ts=data["start_ts"], commit_ts=data["commit_ts"]
            )
        if kind == _KIND_BASE:
            return Violation(axiom=axiom, tid=tid)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed violation record: {exc!r}") from None
    raise ProtocolError(f"unknown violation kind {kind!r}")


# ----------------------------------------------------------------------
# Check results
# ----------------------------------------------------------------------

def result_to_dict(result: CheckResult) -> Dict[str, Any]:
    """Encode a whole check result (report order preserved)."""
    return {
        "valid": result.is_valid,
        "summary": result.summary(),
        "counts": {axiom.value: count for axiom, count in result.counts().items()},
        "violations": [violation_to_dict(v) for v in result.violations],
    }


def result_from_dict(data: Dict[str, Any]) -> CheckResult:
    """Decode a check result; inverse of :func:`result_to_dict`."""
    try:
        records: List[Dict[str, Any]] = data["violations"]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed result record: {exc!r}") from None
    result = CheckResult()
    for record in records:
        result.add(violation_from_dict(record))
    return result
