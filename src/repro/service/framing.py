"""Protocol v2: length-prefixed binary frames.

The framing sibling of :mod:`repro.service.protocol` — see that module's
docstring for the full wire contract (frame layout, handshake, when to
prefer v1).  The short version::

    0      1      2      3      4              8
    +------+------+------+------+--------------+----------------+
    | 0xA6 | 0x52 | ver  | kind |  length u32  | payload ...    |
    +------+------+------+------+--------------+----------------+

Exactly one message kind — ``submit`` — carries a binary payload: a u32
acknowledgement sequence number (0 = fire-and-forget) followed by one
:func:`~repro.histories.serialization.pack_columnar` blob, so a batch of
transactions crosses the wire as flat struct-packed columns and decodes
straight into the checkers' batch-kernel layout.  Every other kind wraps
the *unchanged* protocol-v1 JSON message as its payload; the kind byte
is redundant with the payload's ``"type"`` field and is validated
against it, which keeps one codec for control traffic and makes v2↔v1
equivalence trivial for everything but ``submit``.

``0xA6`` is not a valid first byte of JSON or UTF-8 text, so a reader
can tell a frame from an ndjson line by its first byte — both protocols
share one port, and the per-connection mode is only a send-side choice.

All decode errors raise :class:`~repro.service.protocol.ProtocolError`;
torn frames surface as short reads (the transport layer's concern), and
a frame longer than :data:`MAX_PAYLOAD_BYTES` is rejected from its
header alone, before any payload is buffered.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.histories.model import Transaction
from repro.histories.serialization import ColumnarBatch, pack_columnar, unpack_columnar
from repro.service.protocol import ProtocolError

__all__ = [
    "FRAME_MAGIC0",
    "FRAME_MAGIC1",
    "FRAME_VERSION",
    "HEADER_SIZE",
    "MAX_PAYLOAD_BYTES",
    "CLIENT_KIND_OF_TYPE",
    "SERVER_KIND_OF_TYPE",
    "TYPE_OF_KIND",
    "K_HELLO",
    "K_SUBMIT",
    "K_VIOLATION",
    "K_WELCOME",
    "encode_json_frame",
    "encode_hello_frame",
    "encode_submit_frame",
    "decode_frame_header",
    "decode_frame_payload",
]

#: First header byte.  0xA6 is a UTF-8 continuation byte, so it can
#: never start an ndjson line — per-message auto-detection is one
#: byte of lookahead.
FRAME_MAGIC0 = 0xA6
FRAME_MAGIC1 = 0x52
FRAME_VERSION = 2

_HEADER = struct.Struct("!BBBBI")
HEADER_SIZE = _HEADER.size  # 8

#: Hard payload bound, mirroring the ndjson reader's line bound: one
#: malformed (or hostile) producer must not balloon the reader's buffer.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

_U32 = struct.Struct("!I")

# Message kinds.  Client requests in 1..15, server replies in 16..31;
# the split resolves the one type-string collision ("stats" is both a
# request and a reply).
K_HELLO = 1
K_SUBMIT = 2
K_SUBSCRIBE = 3
K_STATS = 4
K_DRAIN = 5
K_FINALIZE = 6
K_SHUTDOWN = 7
K_PING = 8
K_WELCOME = 16
K_ACK = 17
K_VIOLATION = 18
K_STATS_REPLY = 19
K_DRAINED = 20
K_RESULT = 21
K_PONG = 22
K_ERROR = 23
K_BYE = 24
K_SUBSCRIBED = 25

CLIENT_KIND_OF_TYPE: Dict[str, int] = {
    "hello": K_HELLO,
    "submit": K_SUBMIT,
    "subscribe": K_SUBSCRIBE,
    "stats": K_STATS,
    "drain": K_DRAIN,
    "finalize": K_FINALIZE,
    "shutdown": K_SHUTDOWN,
    "ping": K_PING,
}
SERVER_KIND_OF_TYPE: Dict[str, int] = {
    "welcome": K_WELCOME,
    "ack": K_ACK,
    "violation": K_VIOLATION,
    "stats": K_STATS_REPLY,
    "drained": K_DRAINED,
    "result": K_RESULT,
    "pong": K_PONG,
    "error": K_ERROR,
    "bye": K_BYE,
    "subscribed": K_SUBSCRIBED,
}
TYPE_OF_KIND: Dict[int, str] = {
    **{kind: name for name, kind in CLIENT_KIND_OF_TYPE.items()},
    **{kind: name for name, kind in SERVER_KIND_OF_TYPE.items()},
}


def encode_json_frame(kind: int, message: Dict[str, Any]) -> bytes:
    """Frame one control message (anything but ``submit``) as v2.

    The payload is the protocol-v1 JSON encoding of ``message`` without
    the trailing newline.
    """
    payload = json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )
    return (
        _HEADER.pack(FRAME_MAGIC0, FRAME_MAGIC1, FRAME_VERSION, kind, len(payload))
        + payload
    )


def encode_hello_frame(
    client: str = "repro-client",
    *,
    session: bool = False,
    session_token: Union[str, None] = None,
    resume_from: Union[int, None] = None,
) -> bytes:
    """The v2 upgrade ``hello`` frame, optionally opening/resuming a session.

    With ``session=False`` this is the plain protocol upgrade.  With
    ``session=True`` the hello carries ``session_token`` (``None`` asks
    the daemon to mint one) and, when resuming, ``resume_from`` — the
    client's highest acked submit sequence number, which the daemon
    cross-checks against its own watermark (see
    :mod:`repro.service.protocol`, *Sessions and resume*).
    """
    message: Dict[str, Any] = {"type": "hello", "client": client, "protocol": 2}
    if session or session_token is not None:
        message["session_token"] = session_token
        if resume_from is not None:
            message["resume_from"] = resume_from
    return encode_json_frame(K_HELLO, message)


def encode_submit_frame(
    txns: Union[Sequence[Transaction], ColumnarBatch], seq: int = 0
) -> bytes:
    """Pack a submit batch as one vectored v2 frame.

    ``seq`` requests an ``ack`` carrying the same number once the batch
    is admitted; 0 means fire-and-forget.  The transactions are packed
    columnar in a single walk — no per-transaction JSON objects.
    """
    blob = pack_columnar(txns)
    return (
        _HEADER.pack(FRAME_MAGIC0, FRAME_MAGIC1, FRAME_VERSION, K_SUBMIT, 4 + len(blob))
        + _U32.pack(seq)
        + blob
    )


def decode_frame_header(header: bytes) -> Tuple[int, int]:
    """Validate an 8-byte frame header; returns ``(kind, payload length)``."""
    try:
        magic0, magic1, version, kind, length = _HEADER.unpack(header)
    except struct.error as exc:
        raise ProtocolError(f"short frame header: {exc}") from None
    if magic0 != FRAME_MAGIC0 or magic1 != FRAME_MAGIC1:
        raise ProtocolError(
            f"bad frame magic 0x{magic0:02x}{magic1:02x} "
            f"(expected 0x{FRAME_MAGIC0:02x}{FRAME_MAGIC1:02x})"
        )
    if version != FRAME_VERSION:
        raise ProtocolError(f"unsupported frame version {version}")
    if kind not in TYPE_OF_KIND:
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
        )
    return kind, length


def decode_frame_payload(
    kind: int, payload: Union[bytes, memoryview]
) -> Dict[str, Any]:
    """Decode one frame's payload into a message dict.

    ``submit`` frames return ``{"type": "submit", "seq": n | None,
    "batch": ColumnarBatch}`` — the columnar arrays go on to feed the
    checker's batch kernel directly.  The payload is decoded through a
    ``memoryview``, so the key table and value columns are sliced in
    place from the frame buffer (zero-copy receive); callers may hand in
    a view over a larger receive buffer directly.  Every other kind
    returns the embedded JSON message, validated against the kind byte.
    All malformations raise :class:`ProtocolError`; a partially
    decodable batch is never returned.
    """
    if kind == K_SUBMIT:
        if len(payload) < 4:
            raise ProtocolError("submit frame too short for its sequence number")
        view = payload if type(payload) is memoryview else memoryview(payload)
        (seq,) = _U32.unpack_from(view)
        try:
            batch, consumed = unpack_columnar(view, 4)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        if consumed != len(view):
            raise ProtocolError(
                f"submit frame has {len(view) - consumed} trailing bytes"
            )
        return {"type": "submit", "seq": seq if seq else None, "batch": batch}
    try:
        message = json.loads(payload if type(payload) is not memoryview else bytes(payload))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    expected = TYPE_OF_KIND[kind]
    if message.get("type") != expected:
        raise ProtocolError(
            f"frame kind {kind} ({expected}) carries a "
            f"{message.get('type')!r} message"
        )
    return message
