"""Benchmark harness shared by the per-figure benchmarks.

Every table and figure of the paper's evaluation has one file under
``benchmarks/``; this package provides the scaffolding they share:
scale selection (``REPRO_BENCH_SCALE``), history caching, table
formatting, result persistence, and memory measurement.
"""

from repro.bench.harness import (
    RESULTS_DIR,
    bench_scale,
    cached_default_history,
    cached_list_history,
    cached_rubis_history,
    cached_tpcc_history,
    cached_twitter_history,
    format_series,
    format_table,
    peak_alloc_mb,
    pick,
    write_result,
)

__all__ = [
    "RESULTS_DIR",
    "bench_scale",
    "cached_default_history",
    "cached_list_history",
    "cached_rubis_history",
    "cached_tpcc_history",
    "cached_twitter_history",
    "format_series",
    "format_table",
    "peak_alloc_mb",
    "pick",
    "write_result",
]
