"""Shared benchmark infrastructure.

Scales
------
Benchmarks honour the ``REPRO_BENCH_SCALE`` environment variable:

- ``smoke``  (default) — laptop-friendly sizes; the whole suite runs in
  minutes and the *shape* claims of every figure are still assertable;
- ``medium`` — closer to the paper's axes where feasible in Python;
- ``paper``  — the paper's own sizes for the experiments that remain
  tractable (Chronos/Aion scale; the black-box baselines stay capped, as
  in the paper's own Fig 4, which stops at 3K transactions).

Use :func:`pick` to select a size per scale.

Histories
---------
Workload generation dominates several benchmarks' set-up cost, so
histories are cached per parameter tuple (and per process) by the
``cached_*_history`` helpers.

Results
-------
:func:`write_result` persists each figure's rows under
``benchmarks/results/`` as both a readable table and JSON, which
EXPERIMENTS.md references.
"""

from __future__ import annotations

import json
import os
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.histories.model import History
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.rubis import generate_rubis_history
from repro.workloads.spec import WorkloadSpec
from repro.workloads.tpcc import generate_tpcc_history
from repro.workloads.twitter import generate_twitter_history

__all__ = [
    "RESULTS_DIR",
    "bench_scale",
    "pick",
    "cached_default_history",
    "cached_list_history",
    "cached_twitter_history",
    "cached_rubis_history",
    "cached_tpcc_history",
    "format_table",
    "format_series",
    "write_result",
    "peak_alloc_mb",
]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

_SCALES = ("smoke", "medium", "paper")


def bench_scale() -> str:
    """The active benchmark scale (env ``REPRO_BENCH_SCALE``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    if scale not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {_SCALES}, got {scale!r}")
    return scale


def pick(smoke: Any, medium: Any, paper: Any) -> Any:
    """Select a value for the active scale."""
    return {"smoke": smoke, "medium": medium, "paper": paper}[bench_scale()]


# ----------------------------------------------------------------------
# History caches (per process)
# ----------------------------------------------------------------------

_history_cache: Dict[Tuple, History] = {}


def cached_default_history(**spec_kwargs: Any) -> History:
    """A default-workload history for the given WorkloadSpec fields."""
    key = ("default", tuple(sorted(spec_kwargs.items())))
    if key not in _history_cache:
        _history_cache[key] = generate_default_history(WorkloadSpec(**spec_kwargs))
    return _history_cache[key]


def cached_list_history(**spec_kwargs: Any) -> History:
    key = ("list", tuple(sorted(spec_kwargs.items())))
    if key not in _history_cache:
        _history_cache[key] = generate_list_history(WorkloadSpec(**spec_kwargs))
    return _history_cache[key]


def cached_twitter_history(n_transactions: int, **kwargs: Any) -> History:
    key = ("twitter", n_transactions, tuple(sorted(kwargs.items())))
    if key not in _history_cache:
        _history_cache[key] = generate_twitter_history(n_transactions, **kwargs)
    return _history_cache[key]


def cached_rubis_history(n_transactions: int, **kwargs: Any) -> History:
    key = ("rubis", n_transactions, tuple(sorted(kwargs.items())))
    if key not in _history_cache:
        _history_cache[key] = generate_rubis_history(n_transactions, **kwargs)
    return _history_cache[key]


def cached_tpcc_history(n_transactions: int, **kwargs: Any) -> History:
    key = ("tpcc", n_transactions, tuple(sorted(kwargs.items())))
    if key not in _history_cache:
        _history_cache[key] = generate_tpcc_history(n_transactions, **kwargs)
    return _history_cache[key]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def format_table(rows: Sequence[Dict[str, Any]], *, title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0].keys())
    rendered: List[List[str]] = [[_fmt(row.get(h)) for h in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[i]) for line in rendered))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(points: Iterable[Tuple[float, float]], *, label: str = "") -> str:
    """Render an (x, y) series compactly, one point per line."""
    lines = [label] if label else []
    for x, y in points:
        lines.append(f"  {x:>10.2f}  {y:>14.2f}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def write_result(
    figure_id: str,
    rows: Sequence[Dict[str, Any]],
    *,
    title: str = "",
    notes: str = "",
) -> str:
    """Persist a figure's rows; returns the rendered table."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = format_table(rows, title=title or figure_id)
    text = table + (f"\n\n{notes}" if notes else "") + "\n"
    (RESULTS_DIR / f"{figure_id}.txt").write_text(text, encoding="utf-8")
    payload = {"figure": figure_id, "title": title, "scale": bench_scale(), "rows": list(rows), "notes": notes}
    (RESULTS_DIR / f"{figure_id}.json").write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )
    return text


# ----------------------------------------------------------------------
# Memory measurement
# ----------------------------------------------------------------------

def peak_alloc_mb(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` under tracemalloc; returns (result, peak MiB).

    The real allocation peak of the checking run — the portable
    equivalent of the paper's JVM heap profiles (Fig 7/10/16).
    """
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak / (1024 * 1024)
