#!/usr/bin/env python3
"""Audit a (simulated) database deployment for isolation bugs.

The scenario the paper motivates: you operate a database that claims
snapshot isolation and want to verify the claim from its own logs.
This example:

1. runs the bundled MVCC engine under three configurations — a healthy
   centralized oracle, a skew-prone decentralized (HLC) cluster, and a
   pathologically skewed oracle reproducing the YugabyteDB v2.17.1.0
   clock-skew bug class (§V-D);
2. extracts each history from the CDC log, exactly as the paper extracts
   timestamps from TiDB/YugabyteDB/Dgraph logs;
3. checks SI offline with Chronos and prints per-axiom findings.

Run:  python examples/audit_database.py
"""

from repro.core.chronos import Chronos
from repro.db.faults import SkewedOracle
from repro.db.oracle import CentralizedOracle, DecentralizedOracle
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def audit(name: str, oracle) -> None:
    spec = WorkloadSpec(
        n_sessions=12,
        n_transactions=2_000,
        ops_per_txn=10,
        n_keys=200,
        distribution="zipfian",
        seed=2026,
    )
    history = generate_default_history(spec, oracle=oracle)

    checker = Chronos()
    result = checker.check(history)
    print(f"\n=== {name} ===")
    print(f"history : {len(history)} transactions, {history.op_count()} operations")
    print(f"runtime : sort {checker.report.sort_seconds * 1000:.1f} ms, "
          f"check {checker.report.check_seconds * 1000:.1f} ms")
    print(f"verdict : {result.summary()}")
    for axiom, count in sorted(result.counts().items(), key=lambda kv: kv[0].value):
        sample = next(v for v in result.violations if v.axiom is axiom)
        print(f"  {axiom.value:<11} x{count:<5} e.g. {sample.describe()}")


def main() -> None:
    audit("healthy centralized oracle (TiDB/Dgraph style)", CentralizedOracle())
    audit(
        "decentralized HLC cluster with loose clocks (YugabyteDB style)",
        DecentralizedOracle(3, skews=[0, 7, -7]),
    )
    audit(
        "clock-skew bug reproduction (timestamps drift into the past)",
        SkewedOracle(CentralizedOracle(), probability=0.08, max_skew=80),
    )
    print(
        "\nNote: the skewed deployments execute correctly in real time — the\n"
        "recorded timestamps simply no longer justify the observed values,\n"
        "which is precisely what a timestamp-based checker detects and a\n"
        "black-box checker may miss (Fig 11 / §V-D of the paper)."
    )


if __name__ == "__main__":
    main()
