#!/usr/bin/env python3
"""Continuous online isolation monitoring of a live workload (§VI).

The production scenario for Aion: a database serves an application
(here: the RUBiS auction clone) while a collector tails its CDC stream
and feeds an online checker.  Delivery is batched and asynchronous —
transactions arrive out of timestamp order — so EXT verdicts flip-flop
until the delayed transactions land, and only timeout-expired verdicts
are reported.

This example monitors two deployments:

- a healthy one (violations: none; flip-flops: transient only);
- one that silently loses writes midway (conflict detection disabled is
  simulated by injecting NOCONFLICT faults into the collected history).

Run:  python examples/online_monitoring.py
"""

from repro.core.aion import Aion, AionConfig
from repro.db.faults import HistoryFaultInjector
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner
from repro.workloads.rubis import generate_rubis_history


def monitor(name: str, history) -> None:
    collector = HistoryCollector(
        batch_size=500,
        arrival_tps=10_000,
        delay_model=NormalDelay(mean_ms=100, std_ms=10),  # §VI-C asynchrony
        seed=7,
    )
    schedule = collector.schedule(history)

    clock = SimClock()
    checker = Aion(AionConfig(timeout=5.0), clock=clock)
    runner = OnlineRunner(
        checker, clock, gc_policy=GcPolicy.CHECKING_GC, gc_threshold=2_000
    )
    report = runner.run_capacity(schedule)

    stats = checker.flipflop_stats
    print(f"\n=== {name} ===")
    print(f"processed        : {report.n_processed} txns "
          f"({report.overall_tps:,.0f} TPS sustained, "
          f"{report.n_gc_cycles} GC cycles)")
    print(f"out-of-order     : {schedule.out_of_order_fraction() * 100:.1f}% of adjacent arrivals")
    print(f"flip-flops       : {sum(stats.flips_per_pair.values())} (txn, key) pairs, "
          f"{len(stats.flipped_tids)} txns affected")
    print(f"rectify times    : {stats.rectify_histogram()}")
    print(f"final verdict    : {report.result.summary()}")
    for violation in report.result.violations[:3]:
        print(f"  -> {violation.describe()}")
    checker.close()


def main() -> None:
    clean = generate_rubis_history(4_000, seed=99)
    monitor("healthy RUBiS deployment", clean)

    injector = HistoryFaultInjector(clean, seed=13)
    for _ in range(4):
        injector.inject_noconflict()
    monitor("deployment with lost-update bugs (injected)", injector.build())

    print(
        "\nEvery flip-flop above was a *transient* wrong verdict rectified\n"
        "when the delayed transaction arrived; only verdicts still wrong\n"
        "when their 5 s timer expired are reported as violations."
    )


if __name__ == "__main__":
    main()
