#!/usr/bin/env python3
"""Quickstart: check a history for snapshot isolation in four steps.

1. Build a small history by hand (or load one from JSONL).
2. Check it offline with Chronos.
3. Check the same history online with Aion, feeding transactions one at
   a time — deliberately out of timestamp order.
4. Inspect the violations of a corrupted history.

Run:  python examples/quickstart.py
"""

from repro import Aion, AionConfig, Chronos, HistoryBuilder, read, write


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A hand-built history (timestamps from the database's oracle).
    #    ⊥T (the initial transaction writing 0 to every key) is added
    #    automatically by the builder.
    # ------------------------------------------------------------------
    builder = HistoryBuilder(keys=["x", "y"])
    builder.txn(sid=1, start=1, commit=2, ops=[write("x", 10)])
    builder.txn(sid=2, start=3, commit=5, ops=[read("x", 10), write("y", 20)])
    builder.txn(sid=1, start=6, commit=6, ops=[read("x", 10), read("y", 20)])
    history = builder.build()

    # ------------------------------------------------------------------
    # 2. Offline checking (Chronos, Algorithm 2 of the paper).
    # ------------------------------------------------------------------
    result = Chronos().check(history)
    print(f"offline verdict : {result.summary()}")

    # ------------------------------------------------------------------
    # 3. Online checking (Aion, Algorithm 3): receive transactions in an
    #    out-of-order arrival sequence; verdicts converge regardless.
    # ------------------------------------------------------------------
    aion = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    txns = list(history)
    arrival_order = [txns[0], txns[2], txns[1], txns[3]]  # writer delayed
    for txn in arrival_order:
        aion.receive(txn)
    online = aion.finalize()
    print(f"online verdict  : {online.summary()}")
    flips = aion.flipflop_stats
    print(f"flip-flops      : {sum(flips.flips_per_pair.values())} "
          f"(tentative EXT verdicts corrected when the delayed writer arrived)")
    aion.close()

    # ------------------------------------------------------------------
    # 4. A corrupted history: the read of y sees a value nobody wrote
    #    at that snapshot.
    # ------------------------------------------------------------------
    bad = HistoryBuilder(keys=["x", "y"])
    bad.txn(sid=1, start=1, commit=2, ops=[write("y", 20)])
    bad.txn(sid=2, start=3, commit=3, ops=[read("y", 999)])
    violations = Chronos().check(bad.build())
    print(f"corrupt verdict : {violations.summary()}")
    for violation in violations.violations:
        print(f"  -> {violation.describe()}")


if __name__ == "__main__":
    main()
