#!/usr/bin/env python3
"""Compare six SI/SER checkers on the same histories.

Reproduces the qualitative story of the paper's §V at example scale:

- on a *valid* SI history every SI checker agrees, but runtimes span
  orders of magnitude (black-box search vs timestamp simulation);
- on the Fig 11 history (sequential commits, stale read) only the
  timestamp-based checkers catch the bug;
- on an SI history checked for *serializability*, Aion-SER reports every
  stale snapshot while Cobra stops at the first.

Run:  python examples/compare_checkers.py
"""

import time

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.baselines.elle import ElleKV
from repro.baselines.emme import EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.viper import Viper
from repro.core.aion_ser import AionSer
from repro.core.aion import AionConfig
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def fig11_history():
    builder = HistoryBuilder(keys=["x"])
    builder.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
    builder.txn(sid=2, start=3, commit=4, ops=[write("x", 2)])
    builder.txn(sid=3, start=5, commit=6, ops=[read("x", 1)])
    return builder.build()


def main() -> None:
    history = generate_default_history(
        WorkloadSpec(
            n_sessions=8, n_transactions=250, ops_per_txn=6, n_keys=120,
            distribution="uniform", seed=555,
        )
    )
    checkers = [
        ("Chronos (timestamp)", Chronos),
        ("Emme-SI (timestamp)", EmmeSi),
        ("ElleKV  (black-box)", ElleKV),
        ("PolySI  (black-box)", PolySi),
        ("Viper   (black-box)", Viper),
    ]

    print(f"valid SI history: {len(history)} transactions")
    print(f"{'checker':<22}{'verdict':<12}{'runtime':>10}")
    for name, factory in checkers:
        t0 = time.perf_counter()
        result = factory().check(history)
        elapsed = time.perf_counter() - t0
        verdict = "OK" if result.is_valid else "VIOLATION"
        print(f"{name:<22}{verdict:<12}{elapsed * 1000:>8.1f} ms")

    print("\nFig 11 history (T1 w(x,1); T2 w(x,2); T3 r(x,1), sequential):")
    for name, factory in checkers:
        result = factory().check(fig11_history())
        verdict = "VIOLATION (caught)" if not result.is_valid else "accepted"
        print(f"  {name:<22}{verdict}")

    # SER checking of an SI history: Aion-SER vs Cobra.
    print("\nSER checking of the SI history:")
    offline = ChronosSer().check(history)
    ser = AionSer(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    for txn in history.by_commit_ts():
        ser.receive(txn)
    online = ser.finalize()
    cobra = CobraChecker(CobraConfig(fence_every=10, round_size=100))
    processed = 0
    for txn in history.by_commit_ts():
        cobra.receive(txn)
        processed += 1
        if cobra.stopped:
            break
    print(f"  Chronos-SER : {len(offline.violations)} violations (ground truth)")
    print(f"  Aion-SER    : {len(online.violations)} violations, kept checking to the end")
    print(f"  Cobra       : stopped after {processed} transactions "
          f"at its first violation")
    ser.close()


if __name__ == "__main__":
    main()
