"""Tests for the MVCC engine (Algorithm 1 operational semantics)."""

import pytest

from repro.db.engine import Database, IsolationLevel, TransactionAborted
from repro.db.oracle import CentralizedOracle


@pytest.fixture
def db():
    database = Database()
    database.initialize(["x", "y"], 0)
    return database


class TestSnapshotReads:
    def test_reads_initial_value(self, db):
        session = db.session()
        txn = session.begin()
        assert db.read(txn, "x") == 0
        db.commit(txn, session)

    def test_snapshot_fixed_at_start(self, db):
        s1, s2 = db.session(), db.session()
        reader = s1.begin()
        writer = s2.begin()
        db.write(writer, "x", 5)
        db.commit(writer, s2)
        # reader started before the writer committed: still sees 0.
        assert db.read(reader, "x") == 0
        db.commit(reader, s1)

    def test_new_transaction_sees_committed(self, db):
        s1, s2 = db.session(), db.session()
        writer = s1.begin()
        db.write(writer, "x", 5)
        db.commit(writer, s1)
        reader = s2.begin()
        assert db.read(reader, "x") == 5
        db.commit(reader, s2)

    def test_read_own_buffered_write(self, db):
        session = db.session()
        txn = session.begin()
        db.write(txn, "x", 9)
        assert db.read(txn, "x") == 9
        db.abort(txn, session)

    def test_unborn_key_reads_none(self, db):
        session = db.session()
        txn = session.begin()
        assert db.read(txn, "nope") is None
        db.commit(txn, session)


class TestFirstCommitterWins:
    def test_concurrent_write_conflict(self, db):
        s1, s2 = db.session(), db.session()
        t1, t2 = s1.begin(), s2.begin()
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        db.commit(t1, s1)
        with pytest.raises(TransactionAborted):
            db.commit(t2, s2)
        assert db.n_aborts == 1

    def test_different_keys_no_conflict(self, db):
        s1, s2 = db.session(), db.session()
        t1, t2 = s1.begin(), s2.begin()
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        db.commit(t1, s1)
        db.commit(t2, s2)  # no conflict

    def test_aborted_txn_leaves_no_trace(self, db):
        s1 = db.session()
        t1 = s1.begin()
        db.write(t1, "x", 1)
        db.abort(t1, s1)
        s2 = db.session()
        t2 = s2.begin()
        assert db.read(t2, "x") == 0
        db.commit(t2, s2)
        # Aborted transactions never reach the CDC.
        tids = [record.tid for record in db.cdc]
        assert t1.tid not in tids

    def test_write_skew_allowed_under_si(self, db):
        s1, s2 = db.session(), db.session()
        t1, t2 = s1.begin(), s2.begin()
        db.read(t1, "x")
        db.write(t1, "y", 1)
        db.read(t2, "y")
        db.write(t2, "x", 2)
        db.commit(t1, s1)
        db.commit(t2, s2)  # SI permits write skew


class TestSerMode:
    def test_write_skew_aborts_under_ser(self):
        db = Database(isolation=IsolationLevel.SER)
        db.initialize(["x", "y"], 0)
        s1, s2 = db.session(), db.session()
        t1, t2 = s1.begin(), s2.begin()
        db.read(t1, "x")
        db.write(t1, "y", 1)
        db.read(t2, "y")
        db.write(t2, "x", 2)
        db.commit(t1, s1)
        with pytest.raises(TransactionAborted, match="read validation"):
            db.commit(t2, s2)

    def test_stale_read_aborts_under_ser(self):
        db = Database(isolation=IsolationLevel.SER)
        db.initialize(["x"], 0)
        s1, s2 = db.session(), db.session()
        reader = s1.begin()
        db.read(reader, "x")
        writer = s2.begin()
        db.write(writer, "x", 5)
        db.commit(writer, s2)
        db.write(reader, "y", 1)  # make the reader a writer so it validates
        with pytest.raises(TransactionAborted):
            db.commit(reader, s1)


class TestCommitRecords:
    def test_read_only_commit_equals_start(self, db):
        session = db.session()
        txn = session.begin()
        db.read(txn, "x")
        cts = db.commit(txn, session)
        assert cts == txn.start_ts

    def test_sno_contiguous_over_commits_only(self, db):
        session = db.session()
        t1 = session.begin()
        db.write(t1, "x", 1)
        db.commit(t1, session)
        t2 = session.begin()
        db.write(t2, "x", 2)
        db.abort(t2, session)
        t3 = session.begin()
        db.write(t3, "x", 3)
        db.commit(t3, session)
        snos = [r.sno for r in db.cdc if r.sid == session.sid]
        assert snos == [0, 1]

    def test_cdc_records_observed_values(self, db):
        session = db.session()
        txn = session.begin()
        db.read(txn, "x")
        db.write(txn, "x", 42)
        db.commit(txn, session)
        record = list(db.cdc)[-1]
        kinds = [op.kind.value for op in record.ops]
        assert kinds == ["r", "w"]
        assert record.ops[0].value == 0  # the value actually returned

    def test_collect_history_disabled(self):
        db = Database(collect_history=False)
        db.initialize(["x"], 0)
        session = db.session()
        txn = session.begin()
        db.write(txn, "x", 1)
        db.commit(txn, session)
        assert len(db.cdc) == 0
        assert db.n_commits == 1

    def test_operations_on_finished_txn_rejected(self, db):
        session = db.session()
        txn = session.begin()
        db.commit(txn, session)
        with pytest.raises(RuntimeError):
            db.read(txn, "x")
        with pytest.raises(RuntimeError):
            db.commit(txn, session)


class TestListOperations:
    def test_append_and_read_list(self, db):
        session = db.session()
        t1 = session.begin()
        db.append(t1, "l", 1)
        assert db.read_list(t1, "l") == (1,)
        db.commit(t1, session)
        t2 = session.begin()
        db.append(t2, "l", 2)
        assert db.read_list(t2, "l") == (1, 2)
        db.commit(t2, session)

    def test_append_base_is_snapshot(self, db):
        s1, s2 = db.session(), db.session()
        t1 = s1.begin()
        db.append(t1, "l", 1)
        db.commit(t1, s1)
        t2 = s2.begin()  # starts after t1 committed
        db.append(t2, "l", 2)
        db.commit(t2, s2)
        s3 = db.session()
        t3 = s3.begin()
        assert db.read_list(t3, "l") == (1, 2)
        db.commit(t3, s3)

    def test_concurrent_appends_conflict(self, db):
        s1, s2 = db.session(), db.session()
        t1, t2 = s1.begin(), s2.begin()
        db.append(t1, "l", 1)
        db.append(t2, "l", 2)
        db.commit(t1, s1)
        with pytest.raises(TransactionAborted):
            db.commit(t2, s2)


class TestOracles:
    def test_centralized_strictly_increasing(self):
        oracle = CentralizedOracle()
        stamps = [oracle.next_ts() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_timestamps_unique_across_transactions(self, db):
        stamps = set()
        for _ in range(20):
            session = db.session()
            txn = session.begin()
            db.write(txn, "x", object())
            cts = db.commit(txn, session)
            assert txn.start_ts not in stamps
            assert cts not in stamps
            stamps.update({txn.start_ts, cts})
