"""Tests for workload specs, distributions, driver, and generators."""

from collections import Counter
from random import Random

import pytest

from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.db.engine import Database, IsolationLevel
from repro.histories.stats import HistoryStats
from repro.workloads.distributions import HotspotKeys, UniformKeys, ZipfianKeys, make_chooser
from repro.workloads.driver import InterleavedDriver, TxnProgram
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.rubis import generate_rubis_history
from repro.workloads.spec import PARAMETER_GRID, WorkloadSpec
from repro.workloads.tpcc import generate_tpcc_history
from repro.workloads.twitter import generate_twitter_history


class TestSpec:
    def test_defaults_match_table1(self):
        spec = WorkloadSpec()
        assert spec.n_sessions == 50
        assert spec.n_transactions == 100_000
        assert spec.ops_per_txn == 15
        assert spec.read_ratio == 0.5
        assert spec.n_keys == 1000
        assert spec.distribution == "zipfian"

    def test_grid_values_match_table1(self):
        assert PARAMETER_GRID["n_sessions"] == (10, 20, 50, 100, 200)
        assert PARAMETER_GRID["ops_per_txn"] == (5, 15, 30, 50, 100)
        assert PARAMETER_GRID["n_keys"] == (200, 500, 1000, 2000, 5000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sessions": 0},
            {"ops_per_txn": 0},
            {"read_ratio": 1.5},
            {"n_keys": 0},
            {"distribution": "pareto"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)

    def test_scaled_copy(self):
        spec = WorkloadSpec().scaled(n_transactions=7)
        assert spec.n_transactions == 7
        assert spec.n_keys == 1000


class TestDistributions:
    def test_uniform_covers_keyspace(self):
        chooser = UniformKeys(10)
        rng = Random(1)
        counts = Counter(chooser.choose(rng) for _ in range(5000))
        assert set(counts) == set(range(10))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_zipfian_skews_to_low_indexes(self):
        chooser = ZipfianKeys(100)
        rng = Random(2)
        counts = Counter(chooser.choose(rng) for _ in range(20_000))
        assert counts[0] > counts.get(50, 0) > 0 or counts[0] > 50
        top10 = sum(counts.get(i, 0) for i in range(10))
        assert top10 / 20_000 > 0.3  # head-heavy

    def test_hotspot_80_20(self):
        chooser = HotspotKeys(100)
        rng = Random(3)
        hits = sum(1 for _ in range(20_000) if chooser.choose(rng) < 20)
        assert 0.75 < hits / 20_000 < 0.85

    def test_make_chooser_dispatch(self):
        assert isinstance(make_chooser("uniform", 5), UniformKeys)
        assert isinstance(make_chooser("zipfian", 5), ZipfianKeys)
        assert isinstance(make_chooser("hotspot", 5), HotspotKeys)
        with pytest.raises(ValueError):
            make_chooser("other", 5)

    def test_all_indexes_in_range(self):
        rng = Random(4)
        for name in ("uniform", "zipfian", "hotspot"):
            chooser = make_chooser(name, 7)
            assert all(0 <= chooser.choose(rng) < 7 for _ in range(500))


class TestDriver:
    def test_commits_exactly_n(self):
        db = Database()
        db.initialize(["a", "b"], 0)
        driver = InterleavedDriver(db, 4, seed=11)
        values = iter(range(1, 10_000))

        def factory(_sid, rng):
            return TxnProgram().write(rng.choice(["a", "b"]), next(values))

        aborted = driver.run(factory, 100)
        assert driver.n_committed == 100
        assert db.n_commits == 100 + 0  # ⊥T not via driver
        assert aborted == db.n_aborts

    def test_retries_after_aborts(self):
        db = Database()
        db.initialize(["hot"], 0)
        driver = InterleavedDriver(db, 8, seed=12)
        values = iter(range(1, 10_000))

        def contended(_sid, rng):
            return TxnProgram().read("hot").write("hot", next(values))

        driver.run(contended, 60)
        assert driver.n_committed == 60
        assert driver.n_aborted > 0  # contention really happened

    def test_transactions_overlap(self):
        spec = WorkloadSpec(n_sessions=8, n_transactions=200, ops_per_txn=6, n_keys=50, seed=13)
        history = generate_default_history(spec)
        txns = history.without_init()
        overlapping = sum(
            1 for a, b in zip(txns, txns[1:]) if a.overlaps(b)
        )
        assert overlapping > 0

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(n_sessions=4, n_transactions=80, ops_per_txn=5, n_keys=20, seed=14)
        h1 = generate_default_history(spec)
        h2 = generate_default_history(spec)
        assert [t.tid for t in h1] == [t.tid for t in h2]
        assert [t.start_ts for t in h1] == [t.start_ts for t in h2]


class TestGenerators:
    def test_default_matches_spec(self):
        spec = WorkloadSpec(n_sessions=6, n_transactions=300, ops_per_txn=12,
                            read_ratio=0.3, n_keys=40, seed=15)
        history = generate_default_history(spec)
        stats = HistoryStats.of(history)
        assert stats.n_transactions == 300
        assert stats.n_sessions == 6
        assert abs(stats.ops_per_txn - 12) < 0.01
        assert 0.2 < stats.read_ratio < 0.4
        assert stats.n_keys <= 40
        assert Chronos().check(history).is_valid

    def test_unique_write_values(self):
        spec = WorkloadSpec(n_sessions=4, n_transactions=200, ops_per_txn=8, n_keys=30, seed=16)
        history = generate_default_history(spec)
        written = [
            op.value
            for txn in history.without_init()
            for op in txn.ops
            if op.kind.value == "w"
        ]
        assert len(written) == len(set(written))

    def test_list_workload_valid(self):
        spec = WorkloadSpec(n_sessions=4, n_transactions=200, ops_per_txn=6, n_keys=20, seed=17)
        history = generate_list_history(spec)
        stats = HistoryStats.of(history)
        assert stats.n_appends > 0 and stats.n_list_reads > 0
        assert stats.n_writes == 0 and stats.n_reads == 0
        assert Chronos().check(history).is_valid

    @pytest.mark.parametrize(
        "generator",
        [generate_twitter_history, generate_rubis_history, generate_tpcc_history],
    )
    def test_app_workloads_valid_si(self, generator):
        history = generator(300, seed=18)
        assert len(history.without_init()) == 300
        assert Chronos().check(history).is_valid

    @pytest.mark.parametrize(
        "generator",
        [generate_twitter_history, generate_rubis_history],
    )
    def test_app_workloads_ser_mode(self, generator):
        history = generator(200, seed=19, isolation=IsolationLevel.SER)
        assert ChronosSer().check(history).is_valid

    def test_twitter_key_population_grows(self):
        small = generate_twitter_history(200, seed=20)
        large = generate_twitter_history(800, seed=20)
        assert HistoryStats.of(large).n_keys > HistoryStats.of(small).n_keys

    def test_rubis_key_population_bounded(self):
        small = generate_rubis_history(200, seed=21)
        large = generate_rubis_history(800, seed=21)
        bound = 200 * 2 + 800 * 4  # users*2 + items*4
        assert HistoryStats.of(large).n_keys <= bound
        assert HistoryStats.of(small).n_keys <= bound

    def test_tpcc_composite_keyspace(self):
        history = generate_tpcc_history(300, seed=22)
        keys = history.keys()
        tables = {key.split(":")[0] for key in keys}
        assert {"warehouse", "district", "customer", "stock"} <= tables
        assert any(key.count(":") >= 3 for key in keys)  # composite depth
