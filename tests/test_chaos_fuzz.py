"""Fuzzing the resume handshake: the daemon survives hostile hellos.

Session resume adds client-supplied state to the v2 handshake — a token
and a watermark — which is exactly where a confused (or malicious)
client can hurt a daemon that trusts it: a forged watermark could
double-ingest, a crash on a malformed token is a denial of service.
These tests drive raw sockets at the daemon: malformed tokens, stale
watermarks, truncated frames, seeded byte flips over a valid resume
hello, and token reuse across connections.  The invariant is always the
same — every input yields either a clean resume or a framed ``error``
(:class:`ProtocolError` surfaced to the client), the daemon never dies,
and nothing is ever ingested twice.
"""

from __future__ import annotations

import json
import random
import socket

import pytest

from repro.histories.model import Operation, OpKind, Transaction
from repro.service import CheckerClient, ServiceConfig, ServiceThread
from repro.service.framing import (
    HEADER_SIZE,
    K_ACK,
    K_ERROR,
    K_WELCOME,
    decode_frame_header,
    decode_frame_payload,
    encode_hello_frame,
    encode_submit_frame,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def daemon():
    handle = ServiceThread(
        ServiceConfig(port=0, timeout=float("inf"), protocol="v2")
    ).start()
    yield handle
    handle.stop()


class RawConn:
    """A raw v2 wire connection: bytes in, decoded frames out."""

    def __init__(self, handle: ServiceThread, timeout: float = 5.0) -> None:
        host, port = handle.tcp_address
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rb")
        self.greeting = json.loads(self.file.readline())
        assert self.greeting["type"] == "welcome"

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def read_frame(self):
        """One decoded ``(kind, message)`` — or None on EOF/timeout.

        A frame whose magic was corrupted is parsed by the daemon as an
        ndjson line, so its reply is a v1 ``error`` *line*; those come
        back as ``("line", message)``.
        """
        try:
            first = self.file.read(1)
        except (socket.timeout, OSError):
            return None
        if not first:
            return None
        if first[0] != 0xA6:
            try:
                rest = self.file.readline()
            except (socket.timeout, OSError):
                return None
            return "line", json.loads(first + rest)
        try:
            header = first + self.file.read(HEADER_SIZE - 1)
        except (socket.timeout, OSError):
            return None
        if len(header) < HEADER_SIZE:
            return None
        kind, length = decode_frame_header(header)
        payload = self.file.read(length)
        return kind, decode_frame_payload(kind, payload)

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass


def make_txns(n: int = 3):
    return [
        Transaction(
            tid=index + 1,
            sid=0,
            sno=index + 1,
            ops=(Operation(OpKind.WRITE, "x", index),),
            start_ts=2 * index + 1,
            commit_ts=2 * index + 2,
        )
        for index in range(n)
    ]


def daemon_stats(handle: ServiceThread) -> dict:
    client = CheckerClient(*handle.tcp_address, protocol=2)
    client.connect()
    with client:
        return client.stats(include_bytes=False)


class TestResumeFuzz:
    def test_malformed_token_is_rejected_not_fatal(self, daemon):
        conn = RawConn(daemon)
        conn.send(encode_hello_frame(session=True, session_token="NOT hex!!"))
        kind, message = conn.read_frame()
        assert kind == K_ERROR
        # The connection survived the rejection: a clean hello on the
        # very same socket still gets a session.
        conn.send(encode_hello_frame(session=True))
        kind, message = conn.read_frame()
        assert kind == K_WELCOME
        assert message["session"]["resumed"] is False
        conn.close()
        assert daemon_stats(daemon)["sessions"]["rejected"] >= 1

    def test_stale_watermark_is_rejected(self, daemon):
        host, port = daemon.tcp_address
        client = CheckerClient(host, port, auto_resume=True)
        client.connect()
        with client:
            client.submit_many(make_txns())
            token = client.session_token
        # Claim acks the daemon never sent: honouring resume_from=99
        # would let the client skip re-sending data the daemon lost.
        conn = RawConn(daemon)
        conn.send(
            encode_hello_frame(session=True, session_token=token, resume_from=99)
        )
        kind, message = conn.read_frame()
        assert kind == K_ERROR
        assert "watermark" in message["message"]
        conn.close()
        stats = daemon_stats(daemon)
        assert stats["sessions"]["rejected"] >= 1
        assert stats["received"] == 3

    @pytest.mark.parametrize("resume_from", [True, -1, "zero", 1.5])
    def test_malformed_watermark_types(self, daemon, resume_from):
        conn = RawConn(daemon)
        message = {
            "type": "hello",
            "client": "fuzz",
            "protocol": 2,
            "session_token": None,
            "resume_from": resume_from,
        }
        from repro.service.framing import K_HELLO, encode_json_frame

        conn.send(encode_json_frame(K_HELLO, message))
        kind, _ = conn.read_frame()
        assert kind == K_ERROR
        conn.close()

    def test_truncated_hello_frame(self, daemon):
        frame = encode_hello_frame(session=True)
        for cut in (1, 4, HEADER_SIZE, len(frame) - 3):
            conn = RawConn(daemon)
            conn.send(frame[:cut])
            conn.close()  # daemon sees a short read and drops the conn
        # Still alive and serving.
        assert daemon_stats(daemon)["received"] == 0

    def test_seeded_byte_flips_never_kill_the_daemon(self, daemon):
        rng = random.Random(0xF42)
        pristine = encode_hello_frame(
            session=True, session_token="ab12cd34ef56ab12", resume_from=0
        )
        for _ in range(40):
            mutated = bytearray(pristine)
            for _ in range(rng.randint(1, 3)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            conn = RawConn(daemon, timeout=1.0)
            conn.send(bytes(mutated))
            # Whatever comes back — error frame, welcome (the flip was
            # harmless or hit the token), EOF, or silence while the
            # daemon waits out a corrupted length — must not wedge it.
            conn.read_frame()
            conn.close()
        # The daemon survived the storm: a clean client still works and
        # nothing was ingested along the way.
        host, port = daemon.tcp_address
        client = CheckerClient(host, port, auto_resume=True)
        client.connect()
        with client:
            client.submit_many(make_txns())
            stats = client.stats(include_bytes=False)
        assert stats["received"] == 3

    def test_token_reuse_cannot_double_ingest(self, daemon):
        host, port = daemon.tcp_address
        client = CheckerClient(host, port, auto_resume=True)
        client.connect()
        txns = make_txns()
        with client:
            client.submit_many(txns)
            token = client.session_token
        # A second producer replays the same token AND the same already-
        # acked sequence number: the daemon must dedup by watermark.
        conn = RawConn(daemon)
        conn.send(encode_hello_frame(session=True, session_token=token, resume_from=0))
        kind, welcome = conn.read_frame()
        assert kind == K_WELCOME
        assert welcome["session"]["resumed"] is True
        assert welcome["session"]["acked_seq"] == 1
        conn.send(encode_submit_frame(txns, seq=1))
        kind, ack = conn.read_frame()
        assert kind == K_ACK
        assert ack.get("duplicate") is True
        conn.close()
        stats = daemon_stats(daemon)
        assert stats["received"] == 3  # not 6
        assert stats["sessions"]["deduped_txns"] == 3

    def test_unknown_token_gets_fresh_session(self, daemon):
        """A well-formed token this daemon never issued (it restarted)
        opens a fresh session under a *newly minted* token — adopting
        the client's would let a producer squat another's session."""
        conn = RawConn(daemon)
        stranger = "deadbeefdeadbeef"
        conn.send(encode_hello_frame(session=True, session_token=stranger))
        kind, welcome = conn.read_frame()
        assert kind == K_WELCOME
        session = welcome["session"]
        assert session["resumed"] is False
        assert session["acked_seq"] == 0
        assert session["token"] != stranger
        conn.close()
