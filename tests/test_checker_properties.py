"""Cross-cutting property tests on the checkers themselves."""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aion import Aion, AionConfig
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import normalize_violations
from repro.db.faults import HistoryFaultInjector
from repro.histories.serialization import history_from_jsonl, history_to_jsonl
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.spec import WorkloadSpec


def _history(seed, n=100, faults=0, lists=False):
    spec = WorkloadSpec(
        n_sessions=5, n_transactions=n, ops_per_txn=6, n_keys=25, seed=seed
    )
    history = generate_list_history(spec) if lists else generate_default_history(spec)
    if faults:
        injector = HistoryFaultInjector(history, seed=seed + 1)
        injector.inject_mix(faults)
        history = injector.build()
    return history


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), faults=st.integers(0, 6), order_seed=st.integers(0, 5000))
def test_chronos_input_order_invariance(seed, faults, order_seed):
    """Chronos sorts internally: any input permutation, same verdicts."""
    history = _history(seed, faults=faults)
    baseline = normalize_violations(Chronos().check(history))
    shuffled = list(history.transactions)
    Random(order_seed).shuffle(shuffled)
    assert normalize_violations(Chronos().check_transactions(shuffled)) == baseline


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), faults=st.integers(0, 6))
def test_serialization_preserves_verdicts(seed, faults):
    history = _history(seed, faults=faults)
    baseline = normalize_violations(Chronos().check(history))
    roundtripped = history_from_jsonl(history_to_jsonl(history))
    assert normalize_violations(Chronos().check(roundtripped)) == baseline


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000))
def test_list_histories_serialization_verdicts(seed):
    history = _history(seed, lists=True)
    baseline = normalize_violations(Chronos().check(history))
    roundtripped = history_from_jsonl(history_to_jsonl(history))
    assert normalize_violations(Chronos().check(roundtripped)) == baseline


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_ser_verdicts_subsume_nothing_spurious(seed):
    """A SER-clean history is SI-clean (SER is strictly stronger here)."""
    spec = WorkloadSpec(
        n_sessions=5, n_transactions=80, ops_per_txn=6, n_keys=25, seed=seed
    )
    history = generate_default_history(spec)
    if ChronosSer().check(history).is_valid:
        assert Chronos().check(history).is_valid


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000), naive=st.booleans())
def test_recheck_ablation_verdict_equivalence(seed, naive):
    """The step-③ optimization never changes verdicts."""
    history = _history(seed, faults=2)
    offline = normalize_violations(Chronos().check(history))
    checker = Aion(
        AionConfig(timeout=float("inf"), optimized_recheck=not naive),
        clock=lambda: 0.0,
    )
    # Deliver out of order but session-respecting.
    queues = {
        sid: sorted(txns, key=lambda t: t.commit_ts)
        for sid, txns in history.sessions.items()
    }
    rng = Random(seed)
    sids = list(queues)
    while sids:
        sid = rng.choice(sids)
        checker.receive(queues[sid].pop(0))
        if not queues[sid]:
            sids.remove(sid)
    online = normalize_violations(checker.finalize())
    checker.close()
    # SESSION attribution may differ on ts-mutated histories (see
    # test_differential.split_session_verdicts); compare the rest exactly.
    assert {v for v in online if v[0] != "SESSION"} == {
        v for v in offline if v[0] != "SESSION"
    }


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000))
def test_check_result_counts_consistent(seed):
    history = _history(seed, faults=4)
    result = Chronos().check(history)
    counts = result.counts()
    assert sum(counts.values()) == len(result.violations)
    for axiom, count in counts.items():
        assert len(result.by_axiom(axiom)) == count
    assert result.violating_tids() <= {t.tid for t in history} | {-1}
