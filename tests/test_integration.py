"""End-to-end integration tests: workload → engine → CDC → collector →
checker, across isolation levels, data types and delivery regimes."""

import pytest

from repro.baselines.elle import ElleList
from repro.baselines.emme import EmmeSer, EmmeSi
from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import normalize_violations
from repro.db.cdc import parse_wal
from repro.db.engine import IsolationLevel
from repro.db.faults import HistoryFaultInjector
from repro.histories.serialization import load_history, save_history
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.rubis import generate_rubis_history
from repro.workloads.spec import WorkloadSpec
from repro.workloads.twitter import generate_twitter_history


class TestOfflinePipeline:
    def test_generate_save_load_check(self, tmp_path, si_history):
        path = tmp_path / "history.jsonl"
        save_history(si_history, path)
        loaded = load_history(path)
        assert Chronos().check(loaded).is_valid
        # Verdicts survive serialization even for corrupted histories.
        injector = HistoryFaultInjector(si_history, seed=3)
        injector.inject_mix(5)
        bad = injector.build()
        bad_path = tmp_path / "bad.jsonl"
        save_history(bad, bad_path)
        original = normalize_violations(Chronos().check(bad))
        reloaded = normalize_violations(Chronos().check(load_history(bad_path)))
        assert original == reloaded

    def test_wal_pipeline(self):
        from repro.workloads.generator import build_database

        spec = WorkloadSpec(n_sessions=6, n_transactions=300, ops_per_txn=8, n_keys=60, seed=91)
        db = build_database(spec)
        generate_default_history(spec, database=db)
        history = parse_wal(db.cdc.wal_lines())
        assert Chronos().check(history).is_valid
        assert EmmeSi().check(history).is_valid

    def test_si_engine_satisfies_si_not_ser(self, si_history):
        assert Chronos().check(si_history).is_valid
        assert not ChronosSer().check(si_history).is_valid

    def test_ser_engine_satisfies_both(self, ser_history):
        assert ChronosSer().check(ser_history).is_valid
        assert Chronos().check(ser_history).is_valid
        assert EmmeSer().check(ser_history).is_valid

    def test_list_pipeline_agrees(self, list_history):
        assert Chronos().check(list_history).is_valid
        assert ElleList().check(list_history).is_valid


class TestOnlinePipeline:
    def _online_si(self, history, **runner_kwargs):
        schedule = HistoryCollector(
            batch_size=250,
            arrival_tps=50_000,
            delay_model=NormalDelay(80, 15),
            seed=92,
        ).schedule(history)
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock, **runner_kwargs).run_capacity(schedule)
        checker.close()
        return report

    def test_live_cdc_to_online_checker(self):
        """Tail the CDC during generation and check truly online."""
        from repro.db.engine import Database

        spec = WorkloadSpec(n_sessions=6, n_transactions=400, ops_per_txn=8, n_keys=80, seed=93)
        db = Database()
        checker = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        # Subscribe before initialization so ⊥T reaches the checker too.
        db.cdc.subscribe(lambda record: checker.receive(record.to_transaction()))
        db.initialize(spec.keys, 0)
        generate_default_history(spec, database=db)
        result = checker.finalize()
        assert result.is_valid
        assert checker.processed == 401  # ⊥T + 400 workload transactions
        checker.close()

    def test_delayed_delivery_matches_offline(self, si_history):
        report = self._online_si(si_history)
        offline = normalize_violations(Chronos().check(si_history))
        assert normalize_violations(report.result) == offline

    def test_delayed_delivery_with_gc_matches_offline(self, si_history):
        report = self._online_si(
            si_history, gc_policy=GcPolicy.CHECKING_GC, gc_threshold=300
        )
        offline = normalize_violations(Chronos().check(si_history))
        assert normalize_violations(report.result) == offline

    def test_faulted_stream_detected_online(self):
        history = generate_default_history(
            WorkloadSpec(n_sessions=6, n_transactions=400, ops_per_txn=8, n_keys=60, seed=94)
        )
        injector = HistoryFaultInjector(history, seed=95)
        labels = injector.inject_mix(6)
        bad = injector.build()
        report = self._online_si(bad)
        found = {(v.axiom, v.tid) for v in report.result.violations}
        for label in labels:
            assert any((label.axiom, tid) in found for tid in label.tids), label

    def test_app_workload_online_ser(self):
        history = generate_rubis_history(600, seed=96, isolation=IsolationLevel.SER)
        schedule = HistoryCollector(
            batch_size=200, arrival_tps=20_000,
            delay_model=NormalDelay(50, 10), seed=97,
        ).schedule(history)
        clock = SimClock()
        checker = AionSer(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock).run_capacity(schedule)
        assert report.result.is_valid
        checker.close()

    def test_twitter_online_si(self):
        history = generate_twitter_history(500, seed=98)
        report = self._online_si(history)
        assert report.result.is_valid


class TestScaleSmoke:
    """Larger single-shot runs guarding against quadratic regressions."""

    def test_chronos_20k(self):
        import time

        history = generate_default_history(
            WorkloadSpec(n_sessions=24, n_transactions=20_000, ops_per_txn=10,
                         n_keys=1000, seed=99)
        )
        t0 = time.perf_counter()
        assert Chronos().check(history).is_valid
        assert time.perf_counter() - t0 < 10.0

    def test_aion_10k_out_of_order(self):
        import time

        history = generate_default_history(
            WorkloadSpec(n_sessions=24, n_transactions=10_000, ops_per_txn=8,
                         n_keys=500, seed=100)
        )
        schedule = HistoryCollector(
            batch_size=500, arrival_tps=100_000,
            delay_model=NormalDelay(100, 10), seed=101,
        ).schedule(history)
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        t0 = time.perf_counter()
        for _, txn in schedule:
            checker.receive(txn)
        result = checker.finalize()
        assert time.perf_counter() - t0 < 30.0
        assert result.is_valid
        checker.close()
