"""Tests for Aion, the online SI checker (Algorithm 3)."""

import pytest

from repro.core.aion import Aion, AionConfig
from repro.core.chronos import Chronos
from repro.core.reference import normalize_violations
from repro.core.violations import Axiom
from repro.histories.builder import HistoryBuilder
from repro.histories.model import Transaction
from repro.histories.ops import append, read, write
from repro.online.clock import SimClock


def make_aion(timeout=float("inf"), clock=None):
    return Aion(AionConfig(timeout=timeout), clock=clock or (lambda: 0.0))


def feed(aion, txns):
    for txn in txns:
        aion.receive(txn)
    return aion.finalize()


class TestInOrderEquivalence:
    def test_fig2_in_order(self, paper_fig2_history):
        aion = make_aion()
        result = feed(aion, paper_fig2_history.transactions)
        chronos = Chronos().check(paper_fig2_history)
        assert normalize_violations(result) == normalize_violations(chronos)

    def test_engine_history_in_commit_order(self, si_history):
        aion = make_aion()
        result = feed(aion, si_history.by_commit_ts())
        assert result.is_valid
        assert aion.processed == len(si_history)


class TestOutOfOrderRechecking:
    def test_example5_late_t5(self, paper_fig2_history):
        """The paper's Example 5: T5 arrives last and triggers both
        re-checks — NOCONFLICT with T3 and EXT re-justification of T4."""
        txns = {t.tid: t for t in paper_fig2_history.transactions}
        order = [txns[0], txns[1], txns[2], txns[3], txns[4], txns[5]]
        aion = make_aion()
        result = feed(aion, order)
        conflicts = result.by_axiom(Axiom.NOCONFLICT)
        assert len(conflicts) == 1
        assert conflicts[0].tid == 5 and conflicts[0].conflicting_tids == frozenset({3})
        # T4's read of y=1 was a transient false alarm, cleared by T5.
        assert not result.by_axiom(Axiom.EXT)
        stats = aion.flipflop_stats
        assert stats.flipped_tids == {4}
        assert stats.flips_per_pair == {1: 1}

    def test_late_writer_fixes_pending_read(self):
        b = HistoryBuilder(keys=["x"])
        writer = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        reader = b.txn(sid=2, start=3, commit=3, ops=[read("x", 1)])
        history = b.build()
        aion = make_aion()
        result = feed(aion, [history.init_transaction, reader, writer])
        assert result.is_valid

    def test_late_writer_breaks_satisfied_read(self):
        # Reader initially matches the init value; a late intermediate
        # writer makes the read stale.
        b = HistoryBuilder(keys=["x"])
        writer = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        reader = b.txn(sid=2, start=3, commit=3, ops=[read("x", 0)])
        history = b.build()
        aion = make_aion()
        result = feed(aion, [history.init_transaction, reader, writer])
        ext = result.by_axiom(Axiom.EXT)
        assert len(ext) == 1
        assert ext[0].tid == reader.tid and ext[0].expected == 1

    def test_late_conflicting_writer(self):
        b = HistoryBuilder(keys=["x"])
        t1 = b.txn(sid=1, tid=1, start=1, commit=4, ops=[write("x", 1)])
        t2 = b.txn(sid=2, tid=2, start=2, commit=5, ops=[write("x", 2)])
        history = b.build()
        aion = make_aion()
        result = feed(aion, [history.init_transaction, t2, t1])
        conflicts = result.by_axiom(Axiom.NOCONFLICT)
        assert len(conflicts) == 1
        assert conflicts[0].tid == 1  # attributed to the earlier commit

    def test_rechecking_stops_at_overwrite(self):
        """A late writer only re-justifies reads before the next version
        of the key (the paper's third optimization)."""
        b = HistoryBuilder(keys=["x"])
        late = b.txn(sid=1, tid=1, start=1, commit=2, ops=[write("x", 1)])
        over = b.txn(sid=2, tid=2, start=3, commit=4, ops=[write("x", 2)])
        reader = b.txn(sid=3, tid=3, start=5, commit=5, ops=[read("x", 2)])
        history = b.build()
        aion = make_aion()
        # The reader of x=2 is evaluated against `over`; when `late`
        # arrives its snapshot must NOT be re-pointed at the older write.
        result = feed(aion, [history.init_transaction, over, reader, late])
        assert result.is_valid
        assert aion.flipflop_stats.flipped_tids == set()


class TestTimeouts:
    def test_violation_reported_after_timeout(self):
        clock = SimClock()
        aion = Aion(AionConfig(timeout=5.0), clock=clock)
        b = HistoryBuilder(keys=["x"])
        reader = b.txn(sid=1, start=1, commit=1, ops=[read("x", 42)])
        history = b.build()
        aion.receive(history.init_transaction)
        aion.receive(reader)
        assert aion.poll() == []  # tentative, not reported
        clock.advance(5.1)
        fresh = aion.poll()
        assert [v.axiom for v in fresh] == [Axiom.EXT]

    def test_timeout_expired_verdict_is_final(self):
        clock = SimClock()
        aion = Aion(AionConfig(timeout=1.0), clock=clock)
        b = HistoryBuilder(keys=["x"])
        writer = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        reader = b.txn(sid=2, start=3, commit=3, ops=[read("x", 1)])
        history = b.build()
        aion.receive(history.init_transaction)
        aion.receive(reader)
        clock.advance(2.0)  # reader's timeout expires before writer shows
        aion.receive(writer)
        result = aion.finalize()
        # A (false) EXT violation was finalized; the late writer cannot
        # retract it (Algorithm 3, lines 40-41).
        assert len(result.by_axiom(Axiom.EXT)) == 1

    def test_int_reported_immediately(self):
        aion = make_aion()
        b = HistoryBuilder(keys=["x"])
        bad = b.txn(sid=1, ops=[write("x", 1), read("x", 2)])
        history = b.build()
        aion.receive(history.init_transaction)
        aion.receive(bad)
        assert [v.axiom for v in aion.poll()] == [Axiom.INT]


class TestInputHandling:
    def test_eq1_violation_reported_and_skipped(self):
        aion = make_aion()
        b = HistoryBuilder(keys=["x"])
        bad = b.txn(sid=1, start=9, commit=3, ops=[write("x", 1)])
        history = b.build()
        aion.receive(history.init_transaction)
        aion.receive(bad)
        result = aion.finalize()
        assert [v.axiom for v in result.violations] == [Axiom.TS_ORDER]
        assert aion.resident_txn_count == 1  # only ⊥T retained

    def test_append_rejected(self):
        aion = make_aion()
        b = HistoryBuilder(with_init=False)
        txn = b.txn(sid=1, ops=[append("l", 1)])
        with pytest.raises(ValueError, match="offline"):
            aion.receive(txn)

    def test_session_violation_online(self):
        aion = make_aion()
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, ops=[write("x", 1)])
        skipped = b.txn(sid=1, sno=3, ops=[write("x", 2)])
        history = b.build()
        feed(aion, history.transactions)
        assert aion.result.by_axiom(Axiom.SESSION)
        assert aion.result.by_axiom(Axiom.SESSION)[0].tid == skipped.tid

    def test_poll_drains_once(self):
        aion = make_aion()
        b = HistoryBuilder(keys=["x"])
        bad = b.txn(sid=1, ops=[write("x", 1), read("x", 2)])
        history = b.build()
        aion.receive(history.init_transaction)
        aion.receive(bad)
        assert len(aion.poll()) == 1
        assert aion.poll() == []
        assert len(aion.result.violations) == 1


class TestSharedSnapshotReaders:
    """Regression: distinct readers sharing a snapshot point must each keep
    their own pending EXT re-check (the single-entry ``ExtReadIndex``
    silently clobbered / evicted co-snapshot readers).  Concurrent readers
    handed the same database snapshot legitimately share ``start_ts``, so
    the transactions are built directly rather than through the builder's
    unique-timestamp convenience checks.
    """

    @staticmethod
    def _shared_snapshot_txns(value_a, value_b):
        writer = Transaction(1, 1, 0, [write("x", 1)], start_ts=1, commit_ts=5)
        reader_a = Transaction(2, 2, 0, [read("x", value_a)], start_ts=10, commit_ts=11)
        reader_b = Transaction(3, 3, 0, [read("x", value_b)], start_ts=10, commit_ts=12)
        late = Transaction(4, 4, 0, [write("x", 2)], start_ts=6, commit_ts=7)
        return writer, reader_a, reader_b, late

    def test_both_shared_snapshot_readers_rechecked(self):
        """Two readers at one start_ts; a late writer flips one to a
        violation and rights the other.  With one index slot per snapshot
        the first reader was never re-evaluated and stayed a false
        positive."""
        writer, reader_a, reader_b, late = self._shared_snapshot_txns(2, 1)
        aion = make_aion()
        result = feed(aion, [writer, reader_a, reader_b, late])
        ext = result.by_axiom(Axiom.EXT)
        # The late write of x=2 at commit 7 makes reader_a's read correct
        # and reader_b's stale: exactly reader_b is a violation.
        assert [v.tid for v in ext] == [reader_b.tid]
        aion.close()

    def test_finalizing_one_reader_spares_the_other(self):
        """One reader's timeout must not evict a co-snapshot reader from
        the index; the survivor still flips to a violation when a late
        writer arrives before its own deadline."""
        clock = SimClock()
        aion = make_aion(timeout=5.0, clock=clock)
        writer, reader_a, reader_b, late = self._shared_snapshot_txns(1, 1)
        aion.receive(writer)
        aion.receive(reader_a)      # deadline at t=5
        clock.advance(1.0)
        aion.receive(reader_b)      # deadline at t=6
        clock.advance(4.5)          # t=5.5: reader_a finalized OK on arrival
        aion.receive(late)          # must still re-check reader_b
        result = aion.finalize()
        ext = result.by_axiom(Axiom.EXT)
        assert [v.tid for v in ext] == [reader_b.tid]
        aion.close()
