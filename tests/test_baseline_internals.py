"""Deeper unit tests for baseline internals: Cobra rounds/frontier,
Emme version recovery, the reference oracle, and violation records."""

import pytest

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.baselines.emme import EmmeSer, recover_version_order
from repro.core.reference import ReferenceOnlineChecker, normalize_violations
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    SessionViolation,
)
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write


class TestCobraInternals:
    def _serial_writers(self, n, key="x"):
        b = HistoryBuilder(keys=[key])
        for i in range(n):
            b.txn(sid=i + 1, ops=[write(key, i + 1)])
        return b.build().by_commit_ts()

    def test_round_boundary_flushes(self):
        cobra = CobraChecker(CobraConfig(fence_every=2, round_size=4))
        for txn in self._serial_writers(9):
            cobra.receive(txn)
        assert cobra.rounds_checked == 2  # two full rounds of 4
        cobra.finalize()
        assert cobra.rounds_checked == 3  # partial round flushed

    def test_frontier_carries_last_writer_across_rounds(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 1)])
        b.txn(sid=2, ops=[write("x", 2)])
        b.txn(sid=3, ops=[read("x", 2)])   # round 2 reads round 1's winner
        cobra = CobraChecker(CobraConfig(fence_every=1, round_size=3))
        for txn in b.build().by_commit_ts():
            cobra.receive(txn)
        assert cobra.finalize().is_valid

    def test_read_of_unknown_value_stops(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[read("x", 424242)])
        cobra = CobraChecker(CobraConfig(fence_every=1, round_size=10))
        for txn in b.build().by_commit_ts():
            cobra.receive(txn)
        cobra.finalize()
        assert cobra.stopped
        assert cobra.result.by_axiom(Axiom.EXT)

    def test_same_segment_pairs_become_choices(self):
        # Large fence interval: all writers share one segment.
        cobra = CobraChecker(CobraConfig(fence_every=1000, round_size=6))
        for txn in self._serial_writers(6):
            cobra.receive(txn)
        assert cobra.finalize().is_valid

    def test_initial_value_reads_ok_across_rounds(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, ops=[read("x", 0)])
        b.txn(sid=2, ops=[write("y", 1)])
        b.txn(sid=3, ops=[read("x", 0)])  # round 2, still the init value
        cobra = CobraChecker(CobraConfig(fence_every=1, round_size=2))
        for txn in b.build().by_commit_ts():
            cobra.receive(txn)
        assert cobra.finalize().is_valid


class TestEmmeInternals:
    def test_version_order_includes_init(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=5, ops=[write("x", 1)])
        order = recover_version_order(b.build())
        assert order["x"][0] == 0  # ⊥T first (commit_ts 0)
        assert order["x"][-1] == 5

    def test_emme_ser_session_in_graph(self):
        # Session order participating in a cycle: T2 (session A, later)
        # must follow T1, but T1 reads T2's write.
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, start=1, commit=2, ops=[read("x", 7)])
        b.txn(sid=1, sno=1, start=3, commit=4, ops=[write("x", 7)])
        result = EmmeSer().check(b.build())
        assert not result.is_valid

    def test_emme_reports_commit_order_reads(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, start=2, commit=5, ops=[read("x", 0)])  # stale under SER
        result = EmmeSer().check(b.build())
        assert result.by_axiom(Axiom.EXT)


class TestReferenceOracle:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            ReferenceOnlineChecker(mode="other")

    def test_replay_grows_with_prefix(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 1)])
        b.txn(sid=2, ops=[read("x", 999)])  # EXT violation
        history = b.build()
        oracle = ReferenceOnlineChecker()
        oracle.receive(history.transactions[0])
        oracle.receive(history.transactions[1])
        assert oracle.result().is_valid
        oracle.receive(history.transactions[2])
        assert not oracle.result().is_valid
        assert len(oracle.received) == 3


class TestNormalization:
    def test_conflict_sets_flatten_to_pairs(self):
        result = CheckResult()
        result.add(
            ConflictViolation(
                axiom=Axiom.NOCONFLICT, tid=1, key="x",
                conflicting_tids=frozenset({2, 3}),
            )
        )
        normalized = normalize_violations(result)
        assert ("NOCONFLICT", frozenset({1, 2}), "x") in normalized
        assert ("NOCONFLICT", frozenset({1, 3}), "x") in normalized

    def test_pair_order_insensitive(self):
        a, b = CheckResult(), CheckResult()
        a.add(ConflictViolation(axiom=Axiom.NOCONFLICT, tid=1, key="x",
                                conflicting_tids=frozenset({2})))
        b.add(ConflictViolation(axiom=Axiom.NOCONFLICT, tid=2, key="x",
                                conflicting_tids=frozenset({1})))
        assert normalize_violations(a) == normalize_violations(b)

    def test_describe_strings(self):
        violations = [
            ExtViolation(axiom=Axiom.EXT, tid=1, key="x", expected=1, actual=2),
            SessionViolation(axiom=Axiom.SESSION, tid=2, sid=3,
                             expected_sno=0, actual_sno=1,
                             start_ts=5, last_commit_ts=9),
            ConflictViolation(axiom=Axiom.NOCONFLICT, tid=4, key="y",
                              conflicting_tids=frozenset({5})),
        ]
        for violation in violations:
            text = violation.describe()
            assert str(violation.tid) in text
            assert violation.axiom.value in text or "violated" in text
