"""Tests for the online infrastructure: clock, delays, collector, runner."""

from random import Random

import pytest

from repro.core.aion import Aion, AionConfig
from repro.online.clock import SimClock
from repro.online.collector import ArrivalSchedule, HistoryCollector
from repro.online.delays import NoDelay, NormalDelay
from repro.online.metrics import MemorySampler, ThroughputSeries
from repro.online.runner import GcPolicy, OnlineRunner


class TestSimClock:
    def test_monotonic(self):
        clock = SimClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_never_rewinds(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0


class TestDelays:
    def test_no_delay(self):
        assert NoDelay().delay_seconds(Random(1)) == 0.0

    def test_normal_delay_units_and_clamp(self):
        model = NormalDelay(100.0, 10.0)
        rng = Random(2)
        samples = [model.delay_seconds(rng) for _ in range(1000)]
        mean = sum(samples) / len(samples)
        assert 0.095 < mean < 0.105  # milliseconds converted to seconds
        assert all(s >= 0 for s in samples)
        clamped = NormalDelay(0.0, 100.0)
        assert all(clamped.delay_seconds(rng) >= 0 for _ in range(100))

    def test_zero_std_is_constant(self):
        model = NormalDelay(50.0, 0.0)
        rng = Random(3)
        assert model.delay_seconds(rng) == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            NormalDelay(10, -1)


class TestCollector:
    def test_no_delay_preserves_commit_order(self, si_history):
        collector = HistoryCollector(batch_size=100, arrival_tps=10_000)
        schedule = collector.schedule(si_history)
        assert len(schedule) == len(si_history)
        assert schedule.out_of_order_fraction() == 0.0
        times = [t for t, _ in schedule]
        assert times == sorted(times)

    def test_delays_cause_reordering(self, si_history):
        collector = HistoryCollector(
            batch_size=100, arrival_tps=100_000,
            delay_model=NormalDelay(100, 20), seed=5,
        )
        schedule = collector.schedule(si_history)
        assert schedule.out_of_order_fraction() > 0.0

    def test_session_order_always_preserved(self, si_history):
        collector = HistoryCollector(
            batch_size=50, arrival_tps=1_000_000,
            delay_model=NormalDelay(100, 50), seed=6,
        )
        schedule = collector.schedule(si_history)
        last_sno = {}
        for _, txn in schedule:
            assert last_sno.get(txn.sid, -1) == txn.sno - 1, "session order broken"
            last_sno[txn.sid] = txn.sno

    def test_batch_cadence(self, si_history):
        collector = HistoryCollector(batch_size=100, arrival_tps=10_000)
        schedule = collector.schedule(si_history)
        # 100-txn batches at 10K TPS leave every 10 ms.
        first_batch_time = schedule.arrivals[0][0]
        t_101 = schedule.arrivals[100][0]
        assert abs((t_101 - first_batch_time) - 0.01) < 1e-9

    def test_makespan_positive(self, si_history):
        collector = HistoryCollector(batch_size=500, arrival_tps=25_000)
        assert collector.schedule(si_history).makespan > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryCollector(batch_size=0)
        with pytest.raises(ValueError):
            HistoryCollector(arrival_tps=0)

    def test_iter_batches_cadence_and_partition(self, si_history):
        collector = HistoryCollector(batch_size=100, arrival_tps=10_000)
        txns = si_history.by_commit_ts()
        batches = list(collector.iter_batches(txns))
        assert sum(len(batch) for _, batch in batches) == len(txns)
        assert [txn for _, batch in batches for txn in batch] == txns
        assert all(len(batch) == 100 for _, batch in batches[:-1])
        departures = [depart for depart, _ in batches]
        # 100-txn batches at 10K TPS depart every 10 ms, starting at 0.
        for index, depart in enumerate(departures):
            assert abs(depart - index * 0.01) < 1e-12

    def test_adversarial_delays_trigger_session_holdback(self):
        """Delays crafted to invert every same-session pair: the
        ``_SESSION_EPSILON`` holdback must fire and restore the order."""
        from repro.histories.builder import HistoryBuilder
        from repro.histories.ops import write
        from repro.online.collector import _SESSION_EPSILON

        builder = HistoryBuilder(with_init=False)
        n_sessions, per_session = 3, 20
        ts = 0
        for sno in range(per_session):
            for sid in range(1, n_sessions + 1):
                ts += 2
                builder.txn(sid=sid, start=ts, commit=ts + 1, ops=[write(f"k{sid}", sno)])
        history = builder.build()

        class ShrinkingDelay:
            """Strictly decreasing delays: within a batch, every later
            transaction would arrive *before* every earlier one."""

            def __init__(self) -> None:
                self.remaining = 10.0

            def delay_seconds(self, rng) -> float:
                self.remaining -= 0.01
                return self.remaining

        collector = HistoryCollector(
            batch_size=n_sessions * per_session,
            arrival_tps=1_000_000,
            delay_model=ShrinkingDelay(),
        )
        schedule = collector.schedule(history)

        last_sno = {}
        holdbacks = 0
        last_arrival = {}
        for arrival, txn in schedule:
            assert last_sno.get(txn.sid, -1) == txn.sno - 1, "session order broken"
            last_sno[txn.sid] = txn.sno
            previous = last_arrival.get(txn.sid)
            if previous is not None and abs((arrival - previous) - _SESSION_EPSILON) < 1e-12:
                holdbacks += 1
            last_arrival[txn.sid] = arrival
        # Every same-session successor was held back to its predecessor's
        # floor plus epsilon — (per_session - 1) pairs per session.
        assert holdbacks == n_sessions * (per_session - 1)


class TestMetrics:
    def test_throughput_buckets(self):
        series = ThroughputSeries()
        for t in (0.1, 0.2, 1.5, 2.9):
            series.record(t)
        points = dict(series.series())
        assert points[0.0] == 2 and points[1.0] == 1 and points[2.0] == 1
        assert series.total == 4
        assert series.peak_tps() == 2

    def test_sustained_skips_warmup(self):
        series = ThroughputSeries()
        for _ in range(100):
            series.record(0.5)  # warm-up burst
        for t in range(1, 5):
            series.record(t + 0.5)
        assert series.sustained_tps() == 1.0

    def test_negative_and_straddling_timestamps_bucket_by_floor(self):
        """Regression: ``int(t / w)`` truncates toward zero, folding every
        timestamp in ``(-1, 1)`` bucket widths into bucket 0; bucketing
        must use floor semantics instead."""
        series = ThroughputSeries()
        series.record(-0.5)
        series.record(0.5)
        points = dict(series.series())
        assert points[-1.0] == 1 and points[0.0] == 1
        assert series.peak_tps() == 1  # not 2 collapsed into one bucket
        assert series.total == 2

        wide = ThroughputSeries(bucket_seconds=2.0)
        wide.record(-3.0)  # exact multiple: floor(-1.5) = -2, not -1
        wide.record(-0.1)
        wide.record(0.0)
        assert dict(wide.series()) == {-4.0: 0.5, -2.0: 0.5, 0.0: 0.5}

    def test_series_extends_to_bucket_zero(self):
        series = ThroughputSeries()
        series.record(2.5)
        assert [t for t, _ in series.series()] == [0.0, 1.0, 2.0]

    def test_snapshot_counters(self):
        series = ThroughputSeries()
        for t in (0.1, 0.2, 1.5):
            series.record(t)
        snap = series.snapshot()
        assert snap["total"] == 3
        assert snap["buckets"] == 2
        assert snap["peak_tps"] == 2.0

    def test_memory_sampler_cadence(self):
        values = iter(range(100))
        sampler = MemorySampler(lambda: next(values), every_n=3)
        for i in range(9):
            sampler.maybe_sample(float(i))
        assert len(sampler.samples) == 3
        sampler.force_sample(99.0)
        assert len(sampler.samples) == 4
        assert sampler.peak_bytes == max(v for _, v in sampler.samples)


class TestRunner:
    def _schedule(self, history, **kwargs):
        return HistoryCollector(
            batch_size=200, arrival_tps=50_000,
            delay_model=NormalDelay(50, 5), seed=7, **kwargs,
        ).schedule(history)

    def test_tracking_mode_clock_follows_arrivals(self, si_history):
        schedule = self._schedule(si_history)
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock).run_tracking(schedule)
        assert report.n_processed == len(si_history)
        assert abs(report.virtual_seconds - schedule.makespan) < 1e-6
        assert report.result.is_valid
        checker.close()

    def test_capacity_mode_advances_with_work(self, si_history):
        schedule = self._schedule(si_history)
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock).run_capacity(schedule)
        assert report.virtual_seconds > schedule.makespan  # processing cost added
        assert report.overall_tps > 0
        assert report.result.is_valid
        checker.close()

    def test_gc_policies_trigger(self, si_history):
        schedule = self._schedule(si_history)
        for policy in (GcPolicy.CHECKING_GC, GcPolicy.FULL_GC):
            clock = SimClock()
            checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
            report = OnlineRunner(
                checker, clock, gc_policy=policy, gc_threshold=300
            ).run_capacity(schedule)
            assert report.n_gc_cycles >= 1, policy
            assert report.result.is_valid, policy
            checker.close()

    def test_memory_capped_mode(self, si_history):
        schedule = self._schedule(si_history)
        clock = SimClock()
        probe = Aion(AionConfig(timeout=float("inf")), clock=clock)
        baseline = OnlineRunner(probe, clock, memory_sample_every=200).run_capacity(schedule)
        peak = max(size for _, size in baseline.memory_samples)
        probe.close()

        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock).run_memory_capped(
            schedule, max_bytes=int(peak * 0.5), check_every=150
        )
        assert report.n_gc_cycles >= 1
        assert report.result.is_valid
        assert report.memory_samples
        checker.close()

    def test_memory_capped_short_schedule_still_samples(self, si_history):
        """A schedule shorter than ``check_every`` must still produce at
        least one memory sample (the first decision window used to start
        a full countdown late)."""
        schedule = self._schedule(si_history)
        short = ArrivalSchedule(schedule.arrivals[:50])
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        report = OnlineRunner(checker, clock).run_memory_capped(
            short, max_bytes=10**12, check_every=500
        )
        assert report.memory_samples, "short run produced no memory sample"
        assert report.n_gc_cycles == 0  # generous cap: samples only
        checker.close()
