"""Differential and property-based tests: Aion ≡ Chronos.

Appendix D of the paper argues Aion's re-checking is correct by case
analysis.  These tests demonstrate it mechanically: for histories from
the SI engine — both clean and fault-injected — and for *arbitrary
arrival permutations* that respect session order, Aion's final verdicts
(with an infinite timeout, so nothing finalizes early) equal Chronos's
offline verdicts on the same transactions.
"""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import ReferenceOnlineChecker, normalize_violations
from repro.db.faults import HistoryFaultInjector
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def session_respecting_shuffle(history, rng):
    """A random arrival order that keeps each session's order intact.

    Sessions deliver in *commit order* (what the collector observes),
    not in ``sno`` order — a fault that swaps sequence numbers must
    still be visible to the online checker.
    """
    queues = {
        sid: sorted(txns, key=lambda t: t.commit_ts)
        for sid, txns in history.sessions.items()
    }
    order = []
    sids = list(queues)
    while sids:
        sid = rng.choice(sids)
        order.append(queues[sid].pop(0))
        if not queues[sid]:
            sids.remove(sid)
    return order


def aion_verdicts(txns, *, mode="si", gc_every=None):
    if mode == "si":
        checker = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    else:
        checker = AionSer(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    for index, txn in enumerate(txns):
        checker.receive(txn)
        if gc_every is not None and index % gc_every == gc_every - 1:
            checker.collect_below(None)
    result = normalize_violations(checker.finalize())
    checker.close()
    return result


def small_history(seed, n=120, faults=0):
    history = generate_default_history(
        WorkloadSpec(n_sessions=5, n_transactions=n, ops_per_txn=6, n_keys=30, seed=seed)
    )
    if faults:
        injector = HistoryFaultInjector(history, seed=seed)
        injector.inject_mix(faults)
        history = injector.build()
    return history


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), shuffle_seed=st.integers(0, 10_000))
def test_aion_matches_chronos_clean(seed, shuffle_seed):
    history = small_history(seed)
    offline = normalize_violations(Chronos().check(history))
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    assert aion_verdicts(arrival) == offline


def split_session_verdicts(normalized, history):
    """Split a normalized verdict set into (non-session, violating sids).

    On timestamp-mutated histories Chronos (processing sessions in
    start-timestamp order) and Aion (arrival order) may attribute a
    SESSION violation to different members of the same broken session;
    a session is clean for one checker iff it is clean for the other,
    so the comparable quantity is the *set of violating sessions*.
    """
    others = {v for v in normalized if v[0] != "SESSION"}
    sids = {history.get(v[1]).sid for v in normalized if v[0] == "SESSION"}
    return others, sids


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shuffle_seed=st.integers(0, 10_000),
    faults=st.integers(1, 8),
)
def test_aion_matches_chronos_faulted(seed, shuffle_seed, faults):
    history = small_history(seed, faults=faults)
    offline = split_session_verdicts(
        normalize_violations(Chronos().check(history)), history
    )
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    online = split_session_verdicts(aion_verdicts(arrival), history)
    assert online == offline


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shuffle_seed=st.integers(0, 10_000),
    gc_every=st.sampled_from([7, 25, 60]),
)
def test_aion_matches_chronos_with_gc(seed, shuffle_seed, gc_every):
    history = small_history(seed)
    offline = normalize_violations(Chronos().check(history))
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    assert aion_verdicts(arrival, gc_every=gc_every) == offline


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), shuffle_seed=st.integers(0, 10_000))
def test_aion_ser_matches_chronos_ser(seed, shuffle_seed):
    history = small_history(seed)
    offline = normalize_violations(ChronosSer().check(history))
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    assert aion_verdicts(arrival, mode="ser") == offline


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), prefix=st.integers(5, 120))
def test_aion_prefix_matches_reference_replay(seed, prefix):
    """After ANY prefix of arrivals, Aion's tentative verdicts equal a
    full Chronos replay of the received transactions (the reference
    oracle from Appendix D)."""
    history = small_history(seed)
    arrival = session_respecting_shuffle(history, Random(seed))
    arrival = arrival[: min(prefix, len(arrival))]

    aion = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    reference = ReferenceOnlineChecker(mode="si")
    for txn in arrival:
        aion.receive(txn)
        reference.receive(txn)
    got = normalize_violations(aion.finalize())
    expected = normalize_violations(reference.result())
    aion.close()
    assert got == expected


class TestAdversarialOrders:
    """Deterministic worst-case arrival orders."""

    @pytest.fixture(scope="class")
    def history(self):
        return small_history(4242, n=200)

    def test_reverse_commit_order(self, history):
        offline = normalize_violations(Chronos().check(history))
        # Reverse commit order is maximally out of order; sessions must
        # still be respected, so reverse the *interleaving* of sessions.
        queues = {sid: list(txns) for sid, txns in history.sessions.items()}
        order = []
        remaining = sorted(
            queues, key=lambda sid: -max(t.commit_ts for t in queues[sid])
        )
        # Round-robin from the latest-committing session backwards.
        while any(queues.values()):
            for sid in remaining:
                if queues[sid]:
                    order.append(queues[sid].pop(0))
        assert aion_verdicts(order) == offline

    def test_one_session_held_back_entirely(self, history):
        offline = normalize_violations(Chronos().check(history))
        sessions = history.sessions
        held_sid = max(sessions, key=lambda sid: len(sessions[sid]))
        order = [t for sid, txns in sessions.items() if sid != held_sid for t in txns]
        order += sessions[held_sid]
        assert aion_verdicts(order) == offline

    def test_interleave_two_halves(self, history):
        offline = normalize_violations(Chronos().check(history))
        commit_sorted = history.by_commit_ts()
        half = len(commit_sorted) // 2
        late, early = commit_sorted[half:], commit_sorted[:half]
        order_raw = [txn for pair in zip(late, early) for txn in pair]
        order_raw += commit_sorted[2 * half:]
        # Repair session order within the adversarial interleaving.
        seen = []
        by_session = {}
        for txn in order_raw:
            by_session.setdefault(txn.sid, []).append(txn)
        queues = {
            sid: sorted(txns, key=lambda t: t.sno) for sid, txns in by_session.items()
        }
        positions = {sid: 0 for sid in queues}
        for txn in order_raw:
            sid = txn.sid
            seen.append(queues[sid][positions[sid]])
            positions[sid] += 1
        assert aion_verdicts(seen) == offline
