"""Tests for Chronos, the offline SI checker (Algorithm 2)."""

import pytest

from repro.core.chronos import Chronos, GcMode
from repro.core.violations import Axiom
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import append, read, read_list, write


def check(history):
    return Chronos().check(history)


class TestPaperExamples:
    def test_fig1_valid(self, paper_fig1_history):
        assert check(paper_fig1_history).is_valid

    def test_fig2_noconflict(self, paper_fig2_history):
        result = check(paper_fig2_history)
        assert [v.axiom for v in result.violations] == [Axiom.NOCONFLICT]
        violation = result.violations[0]
        # Reported once, at the commit of the earlier-committing txn (T5).
        assert violation.tid == 5
        assert violation.conflicting_tids == frozenset({3})
        assert violation.key == "y"

    def test_fig11_ext(self, paper_fig11_history):
        result = check(paper_fig11_history)
        assert [v.axiom for v in result.violations] == [Axiom.EXT]
        assert result.violations[0].tid == 3
        assert result.violations[0].expected == 2
        assert result.violations[0].actual == 1


class TestExtAxiom:
    def test_reads_last_committed_before_start(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[write("x", 2)])
        b.txn(sid=3, start=5, commit=5, ops=[read("x", 2)])
        assert check(b.build()).is_valid

    def test_writer_not_visible_while_uncommitted(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, start=2, commit=3, ops=[read("x", 0)])  # snapshot before commit
        assert check(b.build()).is_valid

    def test_reading_uncommitted_flagged(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, start=2, commit=3, ops=[read("x", 1)])  # dirty read
        result = check(b.build())
        assert result.by_axiom(Axiom.EXT)

    def test_unborn_key_reads_none(self):
        b = HistoryBuilder(keys=["x"])  # y never initialized
        b.txn(sid=1, start=1, commit=1, ops=[read("y", None)])
        assert check(b.build()).is_valid

    def test_unborn_key_wrong_value(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=1, ops=[read("y", 7)])
        assert check(b.build()).by_axiom(Axiom.EXT)

    def test_repeated_external_reads_both_checked(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=3, ops=[read("x", 1), read("x", 1)])
        assert check(b.build()).is_valid


class TestIntAxiom:
    def test_read_own_write(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 5), read("x", 5)])
        assert check(b.build()).is_valid

    def test_read_own_write_mismatch(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 5), read("x", 6)])
        result = check(b.build())
        assert [v.axiom for v in result.violations] == [Axiom.INT]
        assert result.violations[0].expected == 5
        assert result.violations[0].actual == 6

    def test_repeated_read_consistency(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=3, ops=[read("x", 1), read("x", 2)])
        result = check(b.build())
        # Second read disagrees with the first: INT, not EXT.
        assert [v.axiom for v in result.violations] == [Axiom.INT]

    def test_write_read_write_read(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 1), read("x", 1), write("x", 2), read("x", 2)])
        assert check(b.build()).is_valid


class TestSessionAxiom:
    def test_gapped_sno(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, ops=[write("x", 1)])
        b.txn(sid=1, sno=2, ops=[write("x", 2)])  # skips sno 1
        result = check(b.build())
        assert result.by_axiom(Axiom.SESSION)

    def test_successor_starts_before_predecessor_commits(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, start=1, commit=5, ops=[write("x", 1)])
        b.txn(sid=1, sno=1, start=3, commit=7, ops=[write("y", 1)])
        result = check(b.build())
        assert result.by_axiom(Axiom.SESSION)

    def test_well_ordered_session(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=1, start=3, commit=4, ops=[write("y", 1)])
        assert check(b.build()).is_valid


class TestNoConflict:
    def test_sequential_writers_ok(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[write("x", 2)])
        assert check(b.build()).is_valid

    def test_concurrent_writers_reported_once(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=2, commit=5, ops=[write("x", 2)])
        result = check(b.build())
        conflicts = result.by_axiom(Axiom.NOCONFLICT)
        assert len(conflicts) == 1
        assert conflicts[0].tid == 1  # earlier commit reports

    def test_three_way_conflict(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=10, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=2, commit=11, ops=[write("x", 2)])
        b.txn(sid=3, tid=3, start=3, commit=12, ops=[write("x", 3)])
        result = check(b.build())
        conflicts = result.by_axiom(Axiom.NOCONFLICT)
        # Chronos reports at each commit except the last: {1:{2,3}}, {2:{3}}.
        assert len(conflicts) == 2
        by_tid = {c.tid: c.conflicting_tids for c in conflicts}
        assert by_tid[1] == frozenset({2, 3})
        assert by_tid[2] == frozenset({3})

    def test_concurrent_writers_different_keys_ok(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, start=2, commit=5, ops=[write("y", 2)])
        assert check(b.build()).is_valid

    def test_write_skew_is_si_legal(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("y", 1)])
        b.txn(sid=2, start=2, commit=4, ops=[read("y", 0), write("x", 2)])
        assert check(b.build()).is_valid


class TestTimestampOrder:
    def test_start_after_commit_reported(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=5, commit=2, ops=[write("x", 1)])
        result = check(b.build())
        assert [v.axiom for v in result.violations] == [Axiom.TS_ORDER]

    def test_malformed_txn_does_not_poison_others(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=5, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=7, commit=8, ops=[write("x", 2)])
        b.txn(sid=3, start=9, commit=9, ops=[read("x", 2)])
        result = check(b.build())
        assert {v.axiom for v in result.violations} == {Axiom.TS_ORDER}


class TestListHistories:
    def test_append_and_read(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[append("l", 2)])
        b.txn(sid=3, start=5, commit=5, ops=[read_list("l", [1, 2])])
        assert check(b.build()).is_valid

    def test_wrong_order_read_flagged(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[append("l", 2)])
        b.txn(sid=3, start=5, commit=5, ops=[read_list("l", [2, 1])])
        assert check(b.build()).by_axiom(Axiom.EXT)

    def test_append_reads_own_suffix(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[append("l", 2), read_list("l", [1, 2])])
        assert check(b.build()).is_valid

    def test_concurrent_appends_conflict(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=3, ops=[append("l", 1)])
        b.txn(sid=2, start=2, commit=4, ops=[append("l", 2)])
        assert check(b.build()).by_axiom(Axiom.NOCONFLICT)

    def test_unborn_list_reads_empty(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=1, ops=[read_list("l", [])])
        assert check(b.build()).is_valid


class TestGcModes:
    @pytest.mark.parametrize("gc_every,mode", [
        (None, GcMode.NONE),
        (100, GcMode.LIGHT),
        (100, GcMode.FULL),
        (1, GcMode.LIGHT),
    ])
    def test_gc_does_not_change_verdicts(self, si_history, gc_every, mode):
        baseline = Chronos().check(si_history)
        checker = Chronos(gc_every=gc_every, gc_mode=mode)
        result = checker.check(si_history)
        assert result.is_valid == baseline.is_valid
        assert len(result.violations) == len(baseline.violations)

    def test_gc_runs_counted(self, si_history):
        checker = Chronos(gc_every=100, gc_mode=GcMode.LIGHT)
        checker.check(si_history)
        assert checker.report.gc_runs == len(si_history) // 100

    def test_invalid_gc_every(self):
        with pytest.raises(ValueError):
            Chronos(gc_every=0)

    def test_consume_releases_retained(self, si_history):
        checker = Chronos(gc_every=200, gc_mode=GcMode.LIGHT)
        checker.check_transactions(list(si_history.transactions), consume=True)
        assert len(checker.retained) < 200
        assert checker.report.peak_retained <= 200

    def test_report_stage_times_populated(self, si_history):
        checker = Chronos()
        checker.check(si_history)
        report = checker.report
        assert report.n_transactions == len(si_history)
        assert report.sort_seconds >= 0
        assert report.check_seconds > 0
        assert report.total_seconds >= report.check_seconds


class TestReportAndAggregation:
    def test_all_violations_reported_not_just_first(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, ops=[write("x", 1), read("x", 2)])       # INT
        b.txn(sid=2, start=10, commit=13, ops=[write("y", 1)])
        b.txn(sid=3, start=11, commit=14, ops=[write("y", 2)])  # NOCONFLICT
        b.txn(sid=4, start=20, commit=20, ops=[read("x", 99)])  # EXT
        result = check(b.build())
        axioms = {v.axiom for v in result.violations}
        assert axioms == {Axiom.INT, Axiom.NOCONFLICT, Axiom.EXT}

    def test_counts_and_summary(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 1), read("x", 2)])
        result = check(b.build())
        assert result.counts() == {Axiom.INT: 1}
        assert "INT=1" in result.summary()
        assert not result.is_valid

    def test_valid_engine_history(self, si_history):
        assert check(si_history).is_valid
