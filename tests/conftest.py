"""Shared fixtures: canonical histories and workload specs.

Histories used across many test modules are generated once per session.
``paper_*`` fixtures reproduce the paper's worked examples (Fig 1, 2, 11)
with the exact timestamps of the figures.
"""

from __future__ import annotations

import pytest

from repro.db.engine import IsolationLevel
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="session")
def si_history():
    """A medium SI history from the default workload (valid under SI)."""
    return generate_default_history(
        WorkloadSpec(
            n_sessions=12, n_transactions=1_500, ops_per_txn=10, n_keys=300, seed=101
        )
    )


@pytest.fixture(scope="session")
def ser_history():
    """A history produced by the SER engine (valid under SER and SI)."""
    return generate_default_history(
        WorkloadSpec(
            n_sessions=12,
            n_transactions=1_000,
            ops_per_txn=8,
            n_keys=200,
            isolation=IsolationLevel.SER,
            seed=102,
        )
    )


@pytest.fixture(scope="session")
def list_history():
    """A list (append) history from the SI engine."""
    return generate_list_history(
        WorkloadSpec(
            n_sessions=8, n_transactions=800, ops_per_txn=6, n_keys=80, seed=103
        )
    )


@pytest.fixture
def paper_fig1_history():
    """Figure 1: a valid SI history (T0..T3)."""
    builder = HistoryBuilder(with_init=False)
    builder.txn(sid=1, tid=1, start=1, commit=2, ops=[write("x", 0), write("y", 0)])
    builder.txn(sid=2, tid=2, start=3, commit=5, ops=[write("x", 1), write("y", 2)])
    builder.txn(sid=3, tid=3, start=4, commit=6, ops=[read("x", 0)])
    builder.txn(sid=4, tid=4, start=7, commit=8, ops=[read("y", 2)])
    return builder.build()


@pytest.fixture
def paper_fig2_history():
    """Figure 2: T3 and T5 conflict on y (NOCONFLICT violation)."""
    builder = HistoryBuilder(keys=["x", "y"])
    builder.txn(sid=1, tid=1, start=1, commit=2, ops=[write("x", 1)])
    builder.txn(sid=2, tid=2, start=3, commit=5, ops=[write("x", 2)])
    builder.txn(sid=3, tid=5, start=4, commit=7, ops=[read("x", 1), write("y", 1)])
    builder.txn(sid=4, tid=3, start=6, commit=9, ops=[read("x", 2), write("y", 2)])
    builder.txn(sid=5, tid=4, start=8, commit=10, ops=[read("y", 1)])
    return builder.build()


@pytest.fixture
def paper_fig11_history():
    """Figure 11: sequential commits where T3 reads a stale x."""
    builder = HistoryBuilder(keys=["x"])
    builder.txn(sid=1, tid=1, start=1, commit=2, ops=[write("x", 1)])
    builder.txn(sid=2, tid=2, start=3, commit=4, ops=[write("x", 2)])
    builder.txn(sid=3, tid=3, start=5, commit=6, ops=[read("x", 1)])
    return builder.build()
