"""Builder, serialization, validation and statistics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histories.builder import HistoryBuilder
from repro.histories.model import History, INIT_TID, OpKind, Transaction
from repro.histories.ops import append, read, read_list, write
from repro.histories.serialization import (
    history_from_jsonl,
    history_to_jsonl,
    load_history,
    save_history,
    txn_from_dict,
    txn_to_dict,
)
from repro.histories.stats import HistoryStats
from repro.histories.validation import validate_history


class TestBuilder:
    def test_auto_init_covers_mentioned_keys(self):
        b = HistoryBuilder()
        b.txn(sid=1, ops=[write("x", 1), read("y", 0)])
        history = b.build()
        init = history.init_transaction
        assert init is not None
        assert init.write_keys == {"x", "y"}

    def test_declared_keys_init(self):
        b = HistoryBuilder(keys=["a", "b"], initial_value=7)
        b.txn(sid=1, ops=[read("a", 7)])
        init = b.build().init_transaction
        assert init.last_writes == {"a": 7, "b": 7}

    def test_without_init(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, ops=[write("x", 1)])
        assert b.build().init_transaction is None

    def test_auto_timestamps_unique_and_ordered(self):
        b = HistoryBuilder()
        t1 = b.txn(sid=1, ops=[write("x", 1)])
        t2 = b.txn(sid=1, ops=[write("x", 2)])
        stamps = {t1.start_ts, t1.commit_ts, t2.start_ts, t2.commit_ts}
        assert len(stamps) == 4
        assert t1.commit_ts < t2.start_ts

    def test_read_only_gets_equal_timestamps(self):
        b = HistoryBuilder()
        t = b.txn(sid=1, ops=[read("x", 0)])
        assert t.start_ts == t.commit_ts

    def test_auto_sno_per_session(self):
        b = HistoryBuilder()
        assert b.txn(sid=1, ops=[write("x", 1)]).sno == 0
        assert b.txn(sid=2, ops=[write("x", 2)]).sno == 0
        assert b.txn(sid=1, ops=[write("x", 3)]).sno == 1

    def test_duplicate_tid_rejected(self):
        b = HistoryBuilder()
        b.txn(sid=1, tid=5, ops=[write("x", 1)])
        with pytest.raises(ValueError):
            b.txn(sid=1, tid=5, ops=[write("x", 2)])

    def test_duplicate_timestamp_rejected(self):
        b = HistoryBuilder()
        b.txn(sid=1, start=10, commit=11, ops=[write("x", 1)])
        with pytest.raises(ValueError):
            b.txn(sid=2, start=11, commit=12, ops=[write("x", 2)])

    def test_reserved_session_rejected(self):
        b = HistoryBuilder()
        with pytest.raises(ValueError):
            b.txn(sid=0, ops=[write("x", 1)])


class TestSerialization:
    def test_txn_dict_roundtrip_all_op_kinds(self):
        txn = Transaction(
            tid=3,
            sid=2,
            sno=1,
            ops=[write("x", 5), read("y", None), append("l", 9), read_list("l", [1, 9])],
            start_ts=10,
            commit_ts=12,
        )
        back = txn_from_dict(txn_to_dict(txn))
        assert back.tid == 3 and back.sid == 2 and back.sno == 1
        assert back.start_ts == 10 and back.commit_ts == 12
        assert list(back.ops) == list(txn.ops)
        assert back.ops[3].value == (1, 9)  # tuple restored from JSON list

    def test_jsonl_roundtrip(self, si_history):
        text = history_to_jsonl(si_history)
        back = history_from_jsonl(text)
        assert len(back) == len(si_history)
        for original, restored in zip(si_history, back):
            assert original.tid == restored.tid
            assert list(original.ops) == list(restored.ops)

    def test_file_roundtrip(self, tmp_path, list_history):
        path = tmp_path / "h.jsonl"
        save_history(list_history, path)
        back = load_history(path)
        assert len(back) == len(list_history)
        assert back.get(1).ops == list_history.get(1).ops

    def test_unknown_op_code_rejected(self):
        with pytest.raises(ValueError):
            txn_from_dict(
                {"tid": 1, "sid": 1, "sno": 0, "sts": 1, "cts": 2, "ops": [["zz", "x", 1]]}
            )

    def test_blank_lines_ignored(self):
        b = HistoryBuilder()
        b.txn(sid=1, ops=[write("x", 1)])
        text = history_to_jsonl(b.build()) + "\n\n\n"
        assert len(history_from_jsonl(text)) == 2


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.sampled_from(["r", "w"]),
            st.sampled_from(["a", "b", "c"]),
            st.integers(-5, 5),
        ),
        min_size=1,
        max_size=8,
    ),
    sts=st.integers(1, 100),
)
def test_serialization_roundtrip_property(data, sts):
    ops = [read(k, v) if kind == "r" else write(k, v) for kind, k, v in data]
    txn = Transaction(tid=1, sid=1, sno=0, ops=ops, start_ts=sts, commit_ts=sts + 1)
    back = txn_from_dict(txn_to_dict(txn))
    assert list(back.ops) == ops
    assert back.write_keys == txn.write_keys
    assert back.external_reads.keys() == txn.external_reads.keys()


class TestValidation:
    def test_valid_generated_history(self, si_history):
        assert validate_history(si_history) == []

    def test_missing_init(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, ops=[write("x", 1)])
        issues = validate_history(b.build())
        assert [i.code for i in issues] == ["init-missing"]
        assert validate_history(b.build(), require_init=False) == []

    def test_ts_reuse_detected(self):
        txns = [
            Transaction(INIT_TID, 0, 0, [write("x", 0)], 0, 0),
            Transaction(1, 1, 0, [write("x", 1)], 5, 6),
            Transaction(2, 2, 0, [write("x", 2)], 6, 7),
        ]
        codes = {i.code for i in validate_history(History(txns))}
        assert "ts-reuse" in codes

    def test_ts_order_detected(self):
        txns = [
            Transaction(INIT_TID, 0, 0, [write("x", 0)], 0, 0),
            Transaction(1, 1, 0, [write("x", 1)], 9, 5),
        ]
        codes = {i.code for i in validate_history(History(txns))}
        assert "ts-order" in codes

    def test_sno_gap_detected(self):
        txns = [
            Transaction(INIT_TID, 0, 0, [write("x", 0)], 0, 0),
            Transaction(1, 1, 0, [write("x", 1)], 1, 2),
            Transaction(2, 1, 2, [write("x", 2)], 3, 4),  # sno jumps 0 -> 2
        ]
        codes = {i.code for i in validate_history(History(txns))}
        assert "sno-gap" in codes

    def test_empty_txn_detected(self):
        txns = [
            Transaction(INIT_TID, 0, 0, [write("x", 0)], 0, 0),
            Transaction(1, 1, 0, [], 1, 2),
        ]
        codes = {i.code for i in validate_history(History(txns))}
        assert "empty-txn" in codes


class TestStats:
    def test_counts_exclude_init(self):
        b = HistoryBuilder(keys=["x", "l"])
        b.txn(sid=1, ops=[write("x", 1), read("x", 1)])
        b.txn(sid=2, ops=[append("l", 1), read_list("l", [1])])
        stats = HistoryStats.of(b.build())
        assert stats.n_transactions == 2
        assert stats.n_sessions == 2
        assert stats.n_operations == 4
        assert stats.n_reads == 1 and stats.n_writes == 1
        assert stats.n_appends == 1 and stats.n_list_reads == 1
        assert stats.read_ratio == 0.5
        assert stats.ops_per_txn == 2.0

    def test_empty_history(self):
        stats = HistoryStats.of(History([]))
        assert stats.n_transactions == 0
        assert stats.ops_per_txn == 0.0
        assert stats.read_ratio == 0.0

    def test_generated_matches_spec(self, si_history):
        stats = HistoryStats.of(si_history)
        assert stats.n_transactions == 1_500
        assert stats.n_sessions == 12
        assert abs(stats.ops_per_txn - 10) < 0.01
        assert 0.4 < stats.read_ratio < 0.6
