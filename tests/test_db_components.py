"""Tests for storage, oracles, CDC and fault injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chronos import Chronos
from repro.core.violations import Axiom
from repro.db.cdc import parse_wal
from repro.db.faults import HistoryFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle, DecentralizedOracle, HybridLogicalClock
from repro.db.storage import MultiVersionStore
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


class TestMultiVersionStore:
    def test_read_at_floor(self):
        store = MultiVersionStore()
        store.install("x", 10, "a")
        store.install("x", 20, "b")
        assert store.read_at("x", 5) is None
        assert store.read_at("x", 10) == (10, "a")
        assert store.read_at("x", 15) == (10, "a")
        assert store.read_at("x", 25) == (20, "b")
        assert store.latest("x") == (20, "b")

    def test_out_of_order_install(self):
        store = MultiVersionStore()
        store.install("x", 20, "b")
        store.install("x", 10, "a")
        assert store.read_at("x", 15) == (10, "a")

    def test_versions_in_window(self):
        store = MultiVersionStore()
        for ts in (10, 20, 30):
            store.install("x", ts, str(ts))
        assert [v[0] for v in store.versions_in("x", 10, 30)] == [20, 30]
        assert store.versions_in("x", 30, 99) == []
        assert store.versions_in("missing", 0, 99) == []

    def test_counters(self):
        store = MultiVersionStore()
        store.install("x", 1, "a")
        store.install("y", 2, "b")
        assert len(store) == 2
        assert store.n_versions == 2
        assert "x" in store and "z" not in store


class TestHlc:
    def test_monotonic_with_stalled_clock(self):
        clock = HybridLogicalClock(0, lambda: 5)
        stamps = [clock.next_ts() for _ in range(50)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 50

    def test_observe_advances(self):
        a = HybridLogicalClock(0, lambda: 5, n_nodes=2)
        b = HybridLogicalClock(1, lambda: 3, n_nodes=2)  # behind
        ts_a = a.next_ts()
        b.observe(ts_a)
        assert b.next_ts() > ts_a

    def test_node_ids_guarantee_uniqueness(self):
        a = HybridLogicalClock(0, lambda: 5, n_nodes=2)
        b = HybridLogicalClock(1, lambda: 5, n_nodes=2)
        stamps = [a.next_ts() for _ in range(20)] + [b.next_ts() for _ in range(20)]
        assert len(set(stamps)) == 40


class TestDecentralizedOracle:
    def test_unique_across_nodes(self):
        oracle = DecentralizedOracle(3, skews=[0, 2, -2])
        stamps = []
        for i in range(300):
            stamps.append(oracle.next_ts(i % 3))
            if i % 10 == 0:
                oracle.tick()
        assert len(set(stamps)) == 300

    def test_skew_produces_inversions(self):
        oracle = DecentralizedOracle(2, skews=[0, 50])
        early = oracle.next_ts(1)  # fast node issues a big timestamp
        oracle.tick()
        late = oracle.next_ts(0)   # slow node issues a smaller one later
        assert late < early

    def test_skews_validation(self):
        with pytest.raises(ValueError):
            DecentralizedOracle(2, skews=[0])
        with pytest.raises(ValueError):
            DecentralizedOracle(0)


class TestCdc:
    def test_wal_roundtrip(self, si_history):
        from repro.db.engine import Database
        from repro.workloads.generator import build_database

        spec = WorkloadSpec(n_sessions=4, n_transactions=100, ops_per_txn=5, n_keys=20, seed=55)
        db = build_database(spec)
        generate_default_history(spec, database=db)
        wal_text = list(db.cdc.wal_lines())
        parsed = parse_wal(wal_text)
        assert len(parsed) == len(db.cdc)
        assert Chronos().check(parsed).is_valid

    def test_subscription_tails_commits(self):
        from repro.workloads.generator import build_database

        spec = WorkloadSpec(n_sessions=4, n_transactions=50, ops_per_txn=5, n_keys=20, seed=56)
        db = build_database(spec)
        seen = []
        db.cdc.subscribe(lambda record: seen.append(record.tid))
        generate_default_history(spec, database=db)
        assert len(seen) == 50  # ⊥T was emitted before subscription

    def test_save_wal_and_iter_wal_file(self, tmp_path):
        from repro.db.cdc import ChangeLog, CdcRecord, iter_wal_file
        from repro.histories.model import OpKind, Operation

        log = ChangeLog()
        log.emit(CdcRecord(tid=1, sid=1, sno=0, start_ts=1, commit_ts=2,
                           ops=(Operation(OpKind.WRITE, "x", 1),)))
        log.emit(CdcRecord(tid=2, sid=2, sno=0, start_ts=3, commit_ts=4, ops=()))
        path = tmp_path / "capture.wal"
        assert log.save_wal(path) == 2
        streamed = list(iter_wal_file(path))
        assert [t.tid for t in streamed] == [1, 2]
        assert list(map(_txn_fingerprint, streamed)) == list(
            map(_txn_fingerprint, log.to_history())
        )

    def test_iter_wal_file_skips_foreign_records(self, tmp_path):
        from repro.db.cdc import iter_wal_file

        path = tmp_path / "mixed.wal"
        path.write_text(
            "BEGIN 7\n"
            'COMMIT {"tid":7,"sid":1,"sno":0,"sts":1,"cts":2,"ops":[["w","x",1]]}\n'
            "\n"
            "CHECKPOINT 9\n",
            encoding="utf-8",
        )
        assert [t.tid for t in iter_wal_file(path)] == [7]


def _txn_fingerprint(txn):
    """Full structural identity (Transaction.__eq__ compares tids only)."""
    return (
        txn.tid, txn.sid, txn.sno, txn.start_ts, txn.commit_ts,
        tuple((op.kind, op.key, op.value) for op in txn.ops),
    )


class TestWalRoundTripProperty:
    """parse_wal ∘ wal_lines is the identity on captured logs — including
    unicode keys, empty transactions, and out-of-order session ids."""

    _keys = st.text(min_size=1, max_size=6).filter(lambda s: s.strip() == s and s)
    _values = st.one_of(st.none(), st.integers(-10, 10), st.text(max_size=4))
    _ops = st.lists(
        st.tuples(st.sampled_from(["r", "w"]), _keys, _values), max_size=5
    )

    @staticmethod
    def _record(tid, sid, sno, start_ts, span, op_specs):
        from repro.db.cdc import CdcRecord
        from repro.histories.model import OpKind, Operation

        ops = tuple(
            Operation(OpKind.READ if code == "r" else OpKind.WRITE, key, value)
            for code, key, value in op_specs
        )
        return CdcRecord(
            tid=tid, sid=sid, sno=sno, start_ts=start_ts,
            commit_ts=start_ts + span, ops=ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(
        txns=st.lists(
            st.tuples(
                st.integers(0, 99),       # sid — arbitrary, repeats, unsorted
                st.integers(0, 5),        # sno
                st.integers(0, 1000),     # start_ts
                st.integers(0, 20),       # commit span
                _ops,
            ),
            max_size=12,
        )
    )
    def test_round_trip(self, txns, tmp_path_factory):
        from repro.db.cdc import ChangeLog, iter_wal_file, parse_wal

        log = ChangeLog()
        for tid, (sid, sno, start_ts, span, op_specs) in enumerate(txns):
            log.emit(self._record(tid, sid, sno, start_ts, span, op_specs))

        original = [_txn_fingerprint(txn) for txn in log.to_history()]
        parsed = parse_wal(log.wal_lines())
        assert [_txn_fingerprint(txn) for txn in parsed] == original

        path = tmp_path_factory.mktemp("wal") / "log.wal"
        log.save_wal(path)
        assert [_txn_fingerprint(txn) for txn in iter_wal_file(path)] == original


class TestSkewedOracle:
    def test_produces_violations(self):
        oracle = SkewedOracle(CentralizedOracle(), probability=0.1, max_skew=100)
        history = generate_default_history(
            WorkloadSpec(n_sessions=8, n_transactions=600, ops_per_txn=10, n_keys=60, seed=57),
            oracle=oracle,
        )
        assert oracle.n_skewed > 0
        result = Chronos().check(history)
        assert not result.is_valid

    def test_zero_probability_is_clean(self):
        oracle = SkewedOracle(CentralizedOracle(), probability=0.0)
        history = generate_default_history(
            WorkloadSpec(n_sessions=4, n_transactions=200, ops_per_txn=6, n_keys=40, seed=58),
            oracle=oracle,
        )
        assert oracle.n_skewed == 0
        assert Chronos().check(history).is_valid

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            SkewedOracle(CentralizedOracle(), stride=1)


class TestFaultInjector:
    @pytest.fixture(scope="class")
    def base_history(self):
        return generate_default_history(
            WorkloadSpec(n_sessions=6, n_transactions=300, ops_per_txn=8, n_keys=50, seed=59)
        )

    def test_rescaling_alone_preserves_verdict(self, base_history):
        injector = HistoryFaultInjector(base_history)
        assert Chronos().check(injector.build()).is_valid

    @pytest.mark.parametrize(
        "method,axiom",
        [
            ("inject_ext", Axiom.EXT),
            ("inject_int", Axiom.INT),
            ("inject_session", Axiom.SESSION),
            ("inject_noconflict", Axiom.NOCONFLICT),
            ("inject_ts_order", Axiom.TS_ORDER),
        ],
    )
    def test_each_fault_detected_by_matching_axiom(self, base_history, method, axiom):
        injector = HistoryFaultInjector(base_history, seed=60)
        label = getattr(injector, method)()
        assert label is not None and label.axiom is axiom
        result = Chronos().check(injector.build())
        found = {(v.axiom, v.tid) for v in result.violations}
        assert any((axiom, tid) in found for tid in label.tids), (label, result.summary())

    def test_inject_mix_counts(self, base_history):
        injector = HistoryFaultInjector(base_history, seed=61)
        labels = injector.inject_mix(10)
        assert len(labels) == 10
        assert len({label.axiom for label in labels}) == 5
