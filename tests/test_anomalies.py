"""Cross-checker anomaly matrix over the canonical anomaly zoo."""

import pytest

from repro.baselines.emme import EmmeSer, EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.viper import Viper
from repro.core.aion import Aion, AionConfig
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.histories.anomalies import ANOMALY_CATALOG


@pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
class TestTimestampCheckers:
    def test_chronos_matches_ground_truth(self, name):
        spec = ANOMALY_CATALOG[name]
        result = Chronos().check(spec.build())
        assert result.is_valid == spec.si_admissible, result.summary()
        if spec.si_axiom is not None:
            assert result.by_axiom(spec.si_axiom), (
                f"{name}: expected {spec.si_axiom.value}, got {result.summary()}"
            )

    def test_emme_si_matches_ground_truth(self, name):
        spec = ANOMALY_CATALOG[name]
        result = EmmeSi().check(spec.build())
        assert result.is_valid == spec.si_admissible, result.summary()

    def test_chronos_ser_matches_ground_truth(self, name):
        spec = ANOMALY_CATALOG[name]
        result = ChronosSer().check(spec.build())
        assert result.is_valid == spec.ser_admissible, result.summary()

    def test_aion_matches_chronos(self, name):
        spec = ANOMALY_CATALOG[name]
        history = spec.build()
        aion = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        for txn in history:
            aion.receive(txn)
        result = aion.finalize()
        aion.close()
        assert result.is_valid == spec.si_admissible, (name, result.summary())


@pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
def test_blackbox_checkers_sound(name):
    """Black-box checkers never reject an SI-admissible history, and can
    miss only the anomalies that depend on timestamps (stale/dirty reads
    rendered plausible by reordering)."""
    spec = ANOMALY_CATALOG[name]
    may_miss = {"stale-sequential-read", "dirty-read", "fractured-read", "long-fork"}
    for checker in (PolySi(), Viper()):
        verdict = checker.check(spec.build()).is_valid
        if spec.si_admissible:
            assert verdict, (name, type(checker).__name__)
        elif name not in may_miss:
            assert not verdict, (name, type(checker).__name__)


def test_catalog_covers_all_axioms():
    axioms = {spec.si_axiom for spec in ANOMALY_CATALOG.values() if spec.si_axiom}
    from repro.core.violations import Axiom

    assert {Axiom.EXT, Axiom.INT, Axiom.NOCONFLICT} <= axioms


def test_write_skew_is_the_si_ser_separator():
    spec = ANOMALY_CATALOG["write-skew"]
    assert spec.si_admissible and not spec.ser_admissible
