"""Tests for the CLI (`python -m repro`) and the example scripts."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestCli:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "h.jsonl"
        assert main([
            "generate", "--txns", "200", "--sessions", "4", "--keys", "40",
            "--out", str(out),
        ]) == 0
        assert out.exists()
        assert main(["stats", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "transactions : 200" in captured

    def test_check_valid_history_exit_zero(self, tmp_path, capsys):
        out = tmp_path / "h.jsonl"
        main(["generate", "--txns", "150", "--sessions", "4", "--keys", "30",
              "--out", str(out)])
        assert main(["check", str(out), "--level", "si"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_ser_on_si_history_exit_one(self, tmp_path):
        out = tmp_path / "h.jsonl"
        main(["generate", "--txns", "300", "--sessions", "8", "--keys", "30",
              "--out", str(out)])
        assert main(["check", str(out), "--level", "ser"]) == 1

    def test_inject_then_check_finds_faults(self, tmp_path, capsys):
        clean = tmp_path / "clean.jsonl"
        bad = tmp_path / "bad.jsonl"
        main(["generate", "--txns", "300", "--sessions", "6", "--keys", "50",
              "--out", str(clean)])
        assert main(["inject", str(clean), "--faults", "4", "--out", str(bad)]) == 0
        assert main(["check", str(bad)]) == 1
        assert "VIOLATIONS" in capsys.readouterr().out

    def test_online_check(self, tmp_path, capsys):
        out = tmp_path / "h.jsonl"
        main(["generate", "--txns", "300", "--sessions", "6", "--keys", "50",
              "--out", str(out)])
        assert main(["check", str(out), "--level", "si", "--online"]) == 0
        assert "online SI" in capsys.readouterr().out

    def test_generate_with_clock_skew_detectable(self, tmp_path):
        out = tmp_path / "skew.jsonl"
        main(["generate", "--txns", "500", "--sessions", "8", "--keys", "50",
              "--clock-skew", "0.1", "--out", str(out)])
        assert main(["check", str(out)]) == 1

    @pytest.mark.parametrize("workload", ["list", "twitter", "rubis", "tpcc"])
    def test_generate_other_workloads(self, tmp_path, workload):
        out = tmp_path / f"{workload}.jsonl"
        assert main([
            "generate", "--workload", workload, "--txns", "100",
            "--sessions", "4", "--keys", "30", "--out", str(out),
        ]) == 0
        assert main(["check", str(out)]) == 0

    def test_generate_ser_isolation(self, tmp_path):
        out = tmp_path / "ser.jsonl"
        main(["generate", "--txns", "200", "--sessions", "4", "--keys", "40",
              "--isolation", "ser", "--out", str(out)])
        assert main(["check", str(out), "--level", "ser"]) == 0


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "audit_database.py", "online_monitoring.py", "compare_checkers.py"],
)
def test_examples_run_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_output_shape():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "offline verdict : OK" in completed.stdout
    assert "online verdict  : OK" in completed.stdout
    assert "EXT=1" in completed.stdout
