"""Service subsystem tests: protocol codecs, daemon behaviour, and the
wire-vs-in-process differential.

The acceptance claim is the last class: for every anomaly fixture (and
for generated/fault-injected workloads), verdicts obtained through the
daemon — multiple concurrent client connections, arbitrary interleaving
between sessions — are identical to feeding the same history directly
into ``Aion`` / ``ShardedAion``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.common import BOTTOM
from repro.core.reference import normalize_violations
from repro.core.sharded import ShardedAion
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    SessionViolation,
    TimestampOrderViolation,
    Violation,
)
from repro.db.faults import HistoryFaultInjector
from repro.histories.anomalies import ANOMALY_CATALOG
from repro.histories.model import Operation, OpKind, Transaction
from repro.service import (
    CheckerClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    replay_transactions,
    transactions_in_commit_order,
)
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    result_from_dict,
    result_to_dict,
    value_from_wire,
    value_to_wire,
    violation_from_dict,
    violation_to_dict,
)
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

@pytest.fixture
def start_service():
    """Start daemons on background threads; stop them all on teardown."""
    handles = []

    def _start(**kwargs) -> ServiceThread:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("timeout", float("inf"))
        handle = ServiceThread(ServiceConfig(**kwargs)).start()
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()


def connect(handle: ServiceThread, **kwargs) -> CheckerClient:
    host, port = handle.tcp_address
    client = CheckerClient(host, port, **kwargs)
    client.connect()
    return client


def anomaly_txns(name: str):
    return transactions_in_commit_order(ANOMALY_CATALOG[name].build())


# ----------------------------------------------------------------------
# Protocol codecs
# ----------------------------------------------------------------------

class TestProtocol:
    @pytest.mark.parametrize(
        "violation",
        [
            Violation(axiom=Axiom.SESSION, tid=3),
            SessionViolation(
                axiom=Axiom.SESSION, tid=4, sid=2, expected_sno=1, actual_sno=3,
                start_ts=10, last_commit_ts=12,
            ),
            IntViolation(axiom=Axiom.INT, tid=5, key="x", expected=1, actual=2),
            ExtViolation(axiom=Axiom.EXT, tid=6, key="ключ", expected=BOTTOM, actual=7),
            ExtViolation(axiom=Axiom.EXT, tid=7, key="l", expected=(1, 2), actual=(1,)),
            ConflictViolation(
                axiom=Axiom.NOCONFLICT, tid=8, key="y", conflicting_tids=frozenset({9, 11})
            ),
            TimestampOrderViolation(axiom=Axiom.TS_ORDER, tid=9, start_ts=5, commit_ts=3),
        ],
    )
    def test_violation_round_trip(self, violation):
        wire = violation_to_dict(violation)
        decoded = violation_from_dict(wire)
        assert decoded == violation
        assert decoded.describe() == violation.describe()

    def test_violation_survives_json_framing(self):
        violation = ExtViolation(axiom=Axiom.EXT, tid=6, key="⊥-key", expected=BOTTOM, actual=(1, "а"))
        line = encode_message({"type": "violation", "violation": violation_to_dict(violation)})
        message = decode_line(line)
        assert violation_from_dict(message["violation"]) == violation

    def test_value_tags(self):
        for value in (None, 0, "s", BOTTOM, (1, 2), ((1,), BOTTOM), ()):
            assert value_from_wire(value_to_wire(value)) == value
        assert value_from_wire(value_to_wire(BOTTOM)) is BOTTOM
        # Plain JSON-object values round-trip too — including one whose
        # own keys would look like a codec tag.
        for value in ({}, {"a": 1}, {"$": "bottom"}, ({"x": [1]},)):
            assert value_from_wire(value_to_wire(value)) == value
        with pytest.raises(ProtocolError):
            value_from_wire({"$": "mystery"})

    def test_result_round_trip(self):
        result = CheckResult()
        result.add(IntViolation(axiom=Axiom.INT, tid=1, key="x", expected=1, actual=2))
        result.add(ExtViolation(axiom=Axiom.EXT, tid=2, key="y", expected=BOTTOM, actual=0))
        data = result_to_dict(result)
        assert data["valid"] is False and data["counts"] == {"INT": 1, "EXT": 1}
        decoded = result_from_dict(data)
        assert decoded.violations == result.violations
        assert result_to_dict(CheckResult())["valid"] is True

    def test_decode_line_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2]\n")
        with pytest.raises(ProtocolError):
            decode_line(b'{"no_type": 1}\n')
        with pytest.raises(ProtocolError):
            violation_from_dict({"axiom": "EXT", "tid": 1, "kind": "nope"})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(port=None).validate()
        with pytest.raises(ValueError):
            ServiceConfig(level="serializable").validate()
        with pytest.raises(ValueError):
            ServiceConfig(level="ser", n_shards=2).validate()
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=0).validate()
        # keep_recent at/above the threshold would make GC a silent no-op.
        with pytest.raises(ValueError):
            ServiceConfig(gc_threshold=500, gc_keep_recent=2000).validate()
        ServiceConfig(gc_threshold=500, gc_keep_recent=100).validate()
        assert ServiceConfig(gc_threshold=500).effective_gc_keep_recent == 250
        assert ServiceConfig(n_shards=4).checker_kind == "sharded-aion-x4"
        assert ServiceConfig(level="ser").checker_kind == "aion-ser"


# ----------------------------------------------------------------------
# Daemon behaviour
# ----------------------------------------------------------------------

class TestDaemon:
    def test_submit_finalize_matches_in_process(self, start_service):
        handle = start_service()
        txns = anomaly_txns("dirty-read")
        with connect(handle) as client:
            client.submit_many(txns)
            result = client.finalize()
        baseline = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        for txn in txns:
            baseline.receive(txn)
        assert normalize_violations(result) == normalize_violations(baseline.finalize())
        baseline.close()

    def test_stats_counters(self, start_service):
        handle = start_service(n_shards=2)
        txns = anomaly_txns("lost-update")
        with connect(handle) as client:
            client.ping()
            client.submit_many(txns)
            processed = client.drain()
            stats = client.stats()
        assert processed == len(txns)
        assert stats["received"] == len(txns)
        assert stats["processed"] == len(txns)
        assert stats["resident_txns"] == len(txns)
        assert stats["queue_depth"] == 0
        assert stats["checker"] == "sharded-aion-x2"
        assert stats["violations"] == 1  # NOCONFLICT reports immediately
        assert stats["estimated_bytes"] > 0
        assert stats["throughput"]["total"] == len(txns)
        assert stats["gc"]["cycles"] == 0
        assert stats["gc"]["seconds"] == 0.0
        assert stats["gc"]["threshold"] == 0
        assert stats["gc"]["debt"] >= 0
        assert stats["queue_high_water"] >= 1
        assert stats["latency"]["count"] >= 1

    def test_live_violation_push(self, start_service):
        handle = start_service()
        subscriber = connect(handle)
        subscriber.subscribe()
        with connect(handle) as producer:
            producer.submit_many(anomaly_txns("lost-update"))
            producer.drain()
        pushed = subscriber.wait_for_violations(1, timeout=10.0)
        assert len(pushed) == 1
        assert isinstance(pushed[0], ConflictViolation)
        subscriber.close()

    def test_idle_ext_timeout_pushes_without_traffic(self, start_service):
        # A finite EXT timeout arms real-clock deadlines; the periodic
        # poll must fire and push them while the wire is idle — no
        # further submits, no drain, no finalize.
        handle = start_service(timeout=0.2, poll_interval=0.05)
        subscriber = connect(handle)
        subscriber.subscribe()
        with connect(handle) as producer:
            producer.submit_many(anomaly_txns("dirty-read"))
            producer.drain()
        pushed = subscriber.wait_for_violations(1, timeout=10.0)
        assert pushed and pushed[0].axiom is Axiom.EXT
        subscriber.close()

    def test_subscribe_replay_delivers_backlog(self, start_service):
        handle = start_service()
        with connect(handle) as producer:
            producer.submit_many(anomaly_txns("lost-update"))
            producer.drain()
            late = connect(handle)
            late.subscribe(replay=True)
            pushed = late.wait_for_violations(1, timeout=10.0)
            assert len(pushed) == 1 and pushed[0].axiom is Axiom.NOCONFLICT
            late.close()

    def test_malformed_input_keeps_connection_alive(self, start_service):
        handle = start_service()
        with connect(handle) as client:
            client._send({"type": "teleport"})
            assert "unknown message type" in client._read_message()["message"]
            client._sock.sendall(b"this is not json\n")
            assert client._read_message()["type"] == "error"
            client._send({"type": "submit", "txns": [{"tid": 1}]})  # missing fields
            assert "malformed transaction" in client._read_message()["message"]
            with pytest.raises(ServiceError):
                client._request({"type": "submit", "txns": []}, expect="ack")
            # After four rejected requests the connection still works.
            client.submit_many(anomaly_txns("dirty-read"))
            assert client.drain() == 3

    def test_rejected_batch_does_not_wedge_daemon(self, start_service):
        # Aion refuses list (append) operations online; a poison batch
        # must be dropped — not kill the drain task, which would wedge
        # every later drain/finalize/shutdown on queue.join().
        handle = start_service()
        poison = Transaction(
            tid=1,
            sid=1,
            sno=1,
            ops=[Operation(OpKind.APPEND, "x", 1)],
            start_ts=1,
            commit_ts=2,
        )
        with connect(handle) as client:
            client.submit_many([poison])
            assert client.drain() == 0  # dropped, yet the queue drained
            stats = client.stats()
            assert stats["ingest_errors"] == 1
            assert "append" in stats["last_ingest_error"]
            # The daemon keeps checking later submissions.
            client.submit_many(anomaly_txns("dirty-read"))
            result = client.finalize()
        assert not result.is_valid

    def test_backpressure_small_queue(self, start_service):
        handle = start_service(queue_capacity=4, batch_size=3)
        history = generate_default_history(
            WorkloadSpec(n_sessions=4, n_transactions=150, ops_per_txn=4, n_keys=40, seed=7)
        )
        txns = transactions_in_commit_order(history)
        with connect(handle) as client:
            client.submit_many(txns, ack=False)  # admission via TCP only
            assert client.drain() == len(txns)
            assert client.stats()["processed"] == len(txns)

    def test_unix_socket_listener(self, start_service, tmp_path):
        sock_path = tmp_path / "daemon.sock"
        handle = start_service(port=None, unix_path=sock_path)
        client = CheckerClient(unix_path=sock_path)
        client.connect()
        with client:
            client.submit_many(anomaly_txns("fractured-read"))
            result = client.finalize()
        assert not result.is_valid

    def test_gc_between_batches(self, start_service):
        handle = start_service(gc_threshold=50, gc_keep_recent=20, batch_size=25)
        history = generate_default_history(
            WorkloadSpec(n_sessions=6, n_transactions=400, ops_per_txn=4, n_keys=60, seed=9)
        )
        txns = transactions_in_commit_order(history)
        with connect(handle) as client:
            client.submit_many(txns)
            client.drain()
            stats = client.stats()
        assert stats["gc"]["cycles"] >= 1
        assert stats["resident_txns"] < len(txns)

    def test_wire_shutdown_is_graceful(self, start_service):
        handle = start_service()
        txns = anomaly_txns("long-fork")
        client = connect(handle)
        client.submit_many(txns)
        final = client.shutdown()
        assert not final.is_valid and set(final.counts()) == {Axiom.EXT}
        client.close()
        # The daemon exited; new connections are refused.
        host, port = handle.tcp_address
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                CheckerClient(host, port, timeout=0.5).connect()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("daemon still accepting connections after shutdown")
        assert handle.stop().violations == final.violations

    def test_subscriber_sees_final_result_on_shutdown(self, start_service):
        handle = start_service()
        subscriber = connect(handle)
        subscriber.subscribe()
        with connect(handle) as producer:
            producer.submit_many(anomaly_txns("dirty-read"))
            producer.shutdown()
        # EXT only finalizes at shutdown; the push precedes the result.
        message = subscriber._read_until("result")
        assert result_from_dict(message).counts() == {Axiom.EXT: 1}
        assert len(subscriber.pushed) == 1
        subscriber.close()

    def test_replay_helper_reports(self, start_service):
        handle = start_service()
        txns = anomaly_txns("stale-sequential-read")
        with connect(handle) as client:
            report = replay_transactions(
                client, txns, batch_size=2, arrival_tps=500.0, finalize=True
            )
        assert report.sent == len(txns)
        assert report.batches == 2
        assert report.wire_tps > 0
        assert report.stats["processed"] == len(txns)
        assert report.result is not None and not report.result.is_valid
        assert report.protocol == 2  # negotiated up by default


# ----------------------------------------------------------------------
# Protocol v2 negotiation and wire accounting
# ----------------------------------------------------------------------

class TestProtocolNegotiation:
    def test_default_client_negotiates_v2(self, start_service):
        handle = start_service()
        with connect(handle) as client:
            assert client.protocol == 2
            assert client.welcome["protocol"] == 2
            assert client.welcome["protocols"] == [1, 2]

    def test_pinned_v1_client_stays_v1(self, start_service):
        handle = start_service()
        with connect(handle, protocol=1) as client:
            assert client.protocol == 1
            client.submit_many(anomaly_txns("dirty-read"))
            assert client.drain() == 3

    def test_fallback_when_daemon_is_v1_only(self, start_service):
        handle = start_service(protocol="v1")
        with connect(handle) as client:
            # Auto-negotiation must degrade, not fail.
            assert client.protocol == 1
            assert client.welcome["protocols"] == [1]
            client.submit_many(anomaly_txns("dirty-read"))
            assert client.drain() == 3

    def test_required_v2_fails_fast_against_v1_daemon(self, start_service):
        handle = start_service(protocol="v1")
        host, port = handle.tcp_address
        client = CheckerClient(host, port, protocol=2)
        with pytest.raises(ServiceError):
            client.connect()
        client.close()

    def test_v2_frame_against_v1_daemon_is_rejected(self, start_service):
        from repro.service.framing import K_HELLO, encode_json_frame

        handle = start_service(protocol="v1")
        with connect(handle, protocol=1) as client:
            client._sock.sendall(
                encode_json_frame(K_HELLO, {"type": "hello", "protocol": 2})
            )
            reply = client._read_message()
            assert reply["type"] == "error"
            assert "disabled" in reply["message"]

    def test_violation_push_and_result_over_v2(self, start_service):
        handle = start_service()
        subscriber = connect(handle)
        assert subscriber.protocol == 2
        subscriber.subscribe()
        with connect(handle) as producer:
            producer.submit_many(anomaly_txns("lost-update"))
            producer.drain()
        pushed = subscriber.wait_for_violations(1, timeout=10.0)
        assert pushed and pushed[0].axiom is Axiom.NOCONFLICT
        result = subscriber.finalize()
        assert not result.is_valid
        subscriber.close()

    def test_wire_stats_account_both_codecs(self, start_service):
        history = generate_default_history(
            WorkloadSpec(n_sessions=4, n_transactions=200, ops_per_txn=6, n_keys=40, seed=9)
        )
        txns = transactions_in_commit_order(history)
        handle = start_service()
        with connect(handle, protocol=2) as v2_client, connect(handle, protocol=1) as v1_client:
            # The same batch through both codecs, for a byte comparison.
            v2_client.submit_many(txns)
            v1_client.submit_many(txns)
            v1_client.drain()
            wire = v2_client.stats(include_bytes=False)["wire"]
        assert set(wire) == {"v1", "v2"}
        for codec in ("v1", "v2"):
            assert set(wire[codec]) == {
                "frames_in", "bytes_in", "frames_out", "bytes_out", "decode_errors"
            }
            assert wire[codec]["frames_in"] >= 1
            assert wire[codec]["bytes_in"] > 0
            assert wire[codec]["decode_errors"] == 0
        # The identical batch is materially smaller on the columnar codec.
        assert wire["v2"]["bytes_in"] < wire["v1"]["bytes_in"]

    def test_wire_stats_count_decode_errors(self, start_service):
        from repro.service.framing import FRAME_MAGIC0

        handle = start_service()
        with connect(handle, protocol=1) as client:
            # A valid header whose payload is garbage: framing survives,
            # the message is rejected, the connection stays usable.
            garbage = bytes([FRAME_MAGIC0, 0x52, 2, 8, 0, 0, 0, 4]) + b"junk"
            client._sock.sendall(garbage)
            reply = client._read_message()
            assert reply["type"] == "error"
            wire = client.stats(include_bytes=False)["wire"]
            assert wire["v2"]["decode_errors"] == 1

    def test_torn_frame_close_does_not_wedge_daemon(self, start_service):
        from repro.service.framing import encode_submit_frame

        handle = start_service()
        with connect(handle) as victim:
            frame = encode_submit_frame(anomaly_txns("dirty-read"), 1)
            victim._sock.sendall(frame[: len(frame) // 2])
            victim._sock.close()
            victim._sock = None
        time.sleep(0.05)
        # The daemon shrugged the torn connection off; a fresh client
        # still gets full service.
        with connect(handle) as client:
            client.submit_many(anomaly_txns("dirty-read"))
            assert client.drain() == 3
            assert client.stats(include_bytes=False)["wire"]["v2"]["decode_errors"] >= 1


class TestPipelinedSubmit:
    def _workload(self, seed=17):
        history = generate_default_history(
            WorkloadSpec(
                n_sessions=5, n_transactions=150, ops_per_txn=6, n_keys=30, seed=seed
            )
        )
        return transactions_in_commit_order(history)

    def test_pipelined_matches_sequential_verdict(self, start_service):
        txns = self._workload()
        sequential = start_service(batch_size=7)
        with connect(sequential) as client:
            client.submit_many(txns)
            expected = client.finalize()
            expected_stats = client.stats(include_bytes=False)
        pipelined = start_service(batch_size=7)
        with connect(pipelined) as client:
            batches = client.submit_pipelined(txns, batch_size=20, window=4)
            assert batches == (len(txns) + 19) // 20
            actual = client.finalize()
            stats = client.stats(include_bytes=False)
        assert stats["received"] == len(txns)
        assert stats["processed"] == expected_stats["processed"]
        assert result_to_dict(actual) == result_to_dict(expected)

    def test_fire_and_forget_window_then_drain(self, start_service):
        txns = self._workload(seed=23)
        handle = start_service()
        with connect(handle) as client:
            client.submit_pipelined(txns, batch_size=10, window=5, ack=False)
            assert client.drain() == len(txns)

    def test_window_and_batch_size_validated(self, start_service):
        handle = start_service()
        with connect(handle) as client:
            with pytest.raises(ValueError):
                client.submit_pipelined([], batch_size=0)
            with pytest.raises(ValueError):
                client.submit_pipelined([], window=0)

    def test_v1_client_falls_back_to_sequential(self, start_service):
        txns = anomaly_txns("dirty-read")
        handle = start_service(protocol="v1")
        with connect(handle) as client:
            assert client.protocol == 1
            client.submit_pipelined(txns, batch_size=2, window=4)
            assert client.drain() == len(txns)

    def test_pipelined_stream_survives_mid_flight_kills(self, start_service):
        txns = self._workload(seed=31)
        handle = start_service()
        with connect(handle, auto_resume=True, reconnect_timeout=10.0) as client:
            # Sever the socket while a full window is in flight: the
            # resume replay must deliver every batch exactly once.
            client.chaos_kill_frames.update({3, 9})
            client.submit_pipelined(txns, batch_size=10, window=6)
            stats = client.stats(include_bytes=False)
            assert client.reconnects >= 1
            assert stats["received"] == len(txns)


# ----------------------------------------------------------------------
# The differential acceptance claim
# ----------------------------------------------------------------------

def in_process_verdicts(txns, *, level="si", n_shards=1):
    config = AionConfig(timeout=float("inf"))
    if n_shards > 1:
        checker = ShardedAion(config, n_shards=n_shards, clock=lambda: 0.0)
    elif level == "si":
        checker = Aion(config, clock=lambda: 0.0)
    else:
        checker = AionSer(config, clock=lambda: 0.0)
    try:
        checker.receive_many(list(txns))
        return normalize_violations(checker.finalize())
    finally:
        checker.close()


def service_verdicts(
    start_service, txns, *, n_shards=1, level="si", n_clients=3, batch=2, protocol=None
):
    """Feed ``txns`` through ``n_clients`` concurrent connections.

    Sessions are partitioned across clients (each client ships its
    sessions in order, as any session-order-preserving producer must);
    interleaving *between* sessions is whatever the scheduler does.
    ``protocol`` pins every client to one codec (1 or 2), negotiates
    freely (None), or alternates v1/v2 clients on the same daemon
    ("mixed").
    """
    handle = start_service(n_shards=n_shards, level=level, batch_size=7)
    by_client = [[] for _ in range(n_clients)]
    for txn in txns:
        by_client[txn.sid % n_clients].append(txn)
    errors = []

    def produce(mine, preference):
        try:
            with connect(handle, protocol=preference) as client:
                for offset in range(0, len(mine), batch):
                    client.submit_many(mine[offset : offset + batch])
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    threads = []
    for index, mine in enumerate(by_client):
        if not mine:
            continue
        preference = (index % 2) + 1 if protocol == "mixed" else protocol
        threads.append(threading.Thread(target=produce, args=(mine, preference)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    with connect(handle) as control:
        result = control.finalize()
    return normalize_violations(result)


class TestServiceDifferential:
    @pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_anomaly_catalog(self, start_service, name, n_shards):
        txns = anomaly_txns(name)
        expected = in_process_verdicts(txns, n_shards=n_shards)
        # Sanity: sharded == plain in-process before the wire enters.
        assert expected == in_process_verdicts(txns, n_shards=1)
        got = service_verdicts(start_service, txns, n_shards=n_shards)
        assert got == expected
        spec = ANOMALY_CATALOG[name]
        if spec.si_axiom is not None:
            assert any(item[0] == spec.si_axiom.value for item in got)
        elif spec.si_admissible:
            assert got == set()

    def test_fault_injected_workload(self, start_service):
        history = generate_default_history(
            WorkloadSpec(n_sessions=9, n_transactions=300, ops_per_txn=6, n_keys=50, seed=31)
        )
        injector = HistoryFaultInjector(history, seed=5)
        injector.inject_mix(6)
        txns = transactions_in_commit_order(injector.build())
        expected = in_process_verdicts(txns)
        assert expected, "fault injection should produce violations"
        for n_shards in (1, 2):
            got = service_verdicts(
                start_service, txns, n_shards=n_shards, n_clients=4, batch=11
            )
            assert got == expected

    def test_ser_level(self, start_service):
        txns = anomaly_txns("write-skew")
        expected = in_process_verdicts(txns, level="ser")
        got = service_verdicts(start_service, txns, level="ser", n_clients=2)
        assert got == expected
        assert got, "write skew must be flagged under SER"

    @pytest.mark.parametrize("protocol", [1, 2, "mixed"])
    def test_anomaly_catalog_per_protocol(self, start_service, protocol):
        # The tentpole's acceptance: identical verdicts whichever codec
        # carries the stream — ndjson, binary frames, or v1 and v2
        # clients interleaving on one daemon.
        for name in sorted(ANOMALY_CATALOG):
            txns = anomaly_txns(name)
            expected = in_process_verdicts(txns)
            got = service_verdicts(start_service, txns, protocol=protocol)
            assert got == expected, (name, protocol)

    @pytest.mark.parametrize("protocol", [1, 2, "mixed"])
    def test_generated_workload_per_protocol(self, start_service, protocol):
        history = generate_default_history(
            WorkloadSpec(n_sessions=6, n_transactions=240, ops_per_txn=6, n_keys=40, seed=77)
        )
        injector = HistoryFaultInjector(history, seed=3)
        injector.inject_mix(4)
        txns = transactions_in_commit_order(injector.build())
        expected = in_process_verdicts(txns)
        assert expected, "fault injection should produce violations"
        got = service_verdicts(
            start_service, txns, n_clients=4, batch=13, protocol=protocol
        )
        assert got == expected


# ----------------------------------------------------------------------
# CLI integration: a real daemon process, driven over a unix socket
# ----------------------------------------------------------------------

class TestCliServeReplay:
    def test_serve_replay_roundtrip(self, tmp_path):
        from repro.cli import main

        sock = tmp_path / "daemon.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--no-tcp", "--unix", str(sock),
             "--timeout", "inf"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 20.0
            while not sock.exists():
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "daemon never bound its socket"
                time.sleep(0.05)
            rc = main(
                ["replay", "--anomaly", "lost-update", "--unix", str(sock),
                 "--expect", "violation", "--shutdown"]
            )
            assert rc == 0
            assert proc.wait(timeout=20) == 0
            output = proc.stdout.read()
            assert "listening on unix:" in output
            assert "NOCONFLICT=1" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_replay_expect_mismatch_fails(self, tmp_path):
        from repro.cli import main

        sock = tmp_path / "daemon.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--no-tcp", "--unix", str(sock),
             "--timeout", "inf"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 20.0
            while not sock.exists():
                assert proc.poll() is None
                assert time.monotonic() < deadline
                time.sleep(0.05)
            rc = main(
                ["replay", "--anomaly", "dirty-read", "--unix", str(sock),
                 "--expect", "valid", "--shutdown"]
            )
            assert rc == 1  # the verdict is a violation, not valid
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
