"""Shared-memory shard lanes: ring semantics, transport equivalence,
fallbacks, and wedge detection.

Three layers, mirroring the transport's claims:

- :class:`repro.core.shm.ShmRing` behaves as a FIFO byte ring under
  wrap-around, backpressure, and interleaved push/pop (checked against a
  deque model);
- ``ShardedAion(executor="shm-process")`` is verdict-identical to the
  serial executor across the anomaly catalog × 1/2/4/8 shards, with the
  lane path actually exercised — and still identical when frames cannot
  use the lanes (tiny rings, unencodable values) and fall back to the
  pipe;
- a killed worker surfaces as an error instead of a hang, and a wedged
  (alive-but-stalled) worker is caught by the heartbeat watchdog.
"""

import os
import signal
import time
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aion import Aion, AionConfig
from repro.core.reference import normalize_violations
from repro.core.sharded import ShardedAion
from repro.core.shm import ShmRing, shm_available
from repro.histories.anomalies import ANOMALY_CATALOG
from repro.histories.model import Operation, OpKind, Transaction

shm_only = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture
def ring():
    r = ShmRing.create(4096)
    yield r
    r.close(unlink=True)


# ----------------------------------------------------------------------
# Ring semantics
# ----------------------------------------------------------------------


@shm_only
class TestRing:
    def test_fifo_roundtrip(self, ring):
        frames = [bytes([i]) * (i * 7 % 200 + 1) for i in range(50)]
        for frame in frames:
            assert ring.try_push(frame)
            view = ring.try_pop()
            assert bytes(view) == frame
            ring.consume()
        assert ring.try_pop() is None
        assert ring.frames_pushed() == ring.frames_popped() == len(frames)

    def test_wrap_around_preserves_fifo(self, ring):
        # Frames sized so successive pushes straddle the ring edge and
        # force wrap markers many times over.
        size = ring.capacity // 3 - 16
        for i in range(64):
            frame = bytes([i % 251]) * size
            assert ring.try_push(frame)
            view = ring.try_pop()
            assert bytes(view) == frame
            ring.consume()

    def test_full_ring_backpressure(self, ring):
        frame = b"x" * 512
        pushed = 0
        while ring.try_push(frame):
            pushed += 1
        assert pushed >= (ring.capacity // (len(frame) + 4)) - 1
        assert not ring.try_push(frame)  # full: producer must back off
        assert ring.try_pop() is not None
        ring.consume()
        assert ring.try_push(frame)  # one slot freed, one push fits

    def test_oversize_payload_refused(self, ring):
        too_big = b"y" * (ring.max_frame + 1)
        assert not ring.try_push(too_big)
        with pytest.raises(ValueError):
            ring.push(too_big)
        assert ring.try_push(b"y" * ring.max_frame)  # bound is inclusive

    def test_pop_requires_consume(self, ring):
        assert ring.try_push(b"a")
        assert ring.try_push(b"b")
        assert bytes(ring.try_pop()) == b"a"
        with pytest.raises(RuntimeError):
            ring.try_pop()
        ring.consume()
        assert bytes(ring.try_pop()) == b"b"
        ring.consume()
        with pytest.raises(RuntimeError):
            ring.consume()

    def test_attach_shares_the_ring(self, ring):
        peer = ShmRing.attach(ring.name)
        try:
            assert ring.try_push(b"hello")
            view = peer.try_pop()
            assert bytes(view) == b"hello"
            peer.consume()
            assert ring.lag() == 0
        finally:
            peer.close()

    def test_heartbeat_counts_beats(self, ring):
        assert ring.heartbeat() == 0
        for expected in (1, 2, 3):
            ring.beat()
            assert ring.heartbeat() == expected

    def test_blocking_pop_honours_abort_and_timeout(self, ring):
        assert ring.pop(timeout=0.01) is None
        assert ring.pop(abort=lambda: True) is None
        assert ring.try_push(b"z")
        assert bytes(ring.pop(timeout=0.01)) == b"z"
        ring.consume()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.binary(min_size=0, max_size=700)),
            max_size=60,
        )
    )
    def test_matches_deque_model(self, script):
        # Interleaved pushes and pops against a plain deque: whenever the
        # ring accepts/yields, the model must agree byte for byte.
        ring = ShmRing.create(4096)
        model = deque()
        try:
            for is_push, payload in script:
                if is_push:
                    if ring.try_push(payload):
                        model.append(payload)
                else:
                    view = ring.try_pop()
                    if view is None:
                        assert not model
                    else:
                        assert bytes(view) == model.popleft()
                        ring.consume()
            while model:
                view = ring.try_pop()
                assert view is not None
                assert bytes(view) == model.popleft()
                ring.consume()
            assert ring.try_pop() is None
        finally:
            ring.close(unlink=True)


# ----------------------------------------------------------------------
# Transport equivalence (shm vs serial)
# ----------------------------------------------------------------------


def _serial_verdicts(txns, **kwargs):
    return _sharded_verdicts(txns, executor="serial", **kwargs)


def _sharded_verdicts(txns, *, n_shards=2, executor="shm-process", batch_size=4, **kwargs):
    checker = ShardedAion(
        AionConfig(timeout=float("inf")),
        n_shards=n_shards,
        clock=lambda: 0.0,
        executor=executor,
        **kwargs,
    )
    try:
        for offset in range(0, len(txns), batch_size):
            checker.receive_many(txns[offset : offset + batch_size])
        return normalize_violations(checker.finalize()), checker
    finally:
        checker.close()


@shm_only
@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_anomaly_catalog_byte_identical_verdicts(n_shards):
    for name, fixture in ANOMALY_CATALOG.items():
        txns = list(fixture.build().transactions)
        expected, _ = _serial_verdicts(txns, n_shards=n_shards)
        actual, checker = _sharded_verdicts(txns, n_shards=n_shards)
        assert repr(actual) == repr(expected), (
            f"{name} x{n_shards}: shm verdicts diverge from serial"
        )
        # The equivalence must cover the lane transport, not the pipe
        # fallback quietly doing all the work.
        assert checker.lane_frames > 0
        assert checker.lane_fallbacks == 0


@shm_only
def test_randomized_workload_matches_aion():
    from repro.workloads.generator import generate_default_history
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        n_sessions=6, n_transactions=300, ops_per_txn=6, n_keys=12, seed=42
    )
    txns = list(generate_default_history(spec).transactions)
    baseline = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    for txn in txns:
        baseline.receive(txn)
    expected = normalize_violations(baseline.finalize())
    baseline.close()
    actual, checker = _sharded_verdicts(txns, n_shards=4, batch_size=32)
    assert repr(actual) == repr(expected)
    assert checker.lane_frames > 0


@shm_only
def test_tiny_rings_fall_back_to_pipe_with_identical_verdicts():
    from repro.workloads.generator import generate_default_history
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        n_sessions=4, n_transactions=200, ops_per_txn=6, n_keys=8, seed=9
    )
    txns = list(generate_default_history(spec).transactions)
    expected, _ = _serial_verdicts(txns, n_shards=2, batch_size=100)
    # 4096-byte rings cannot hold a 100-txn batch frame: every stream
    # must take the pipe path, and verdicts must not care.
    actual, checker = _sharded_verdicts(
        txns, n_shards=2, batch_size=100, lane_capacity=4096
    )
    assert repr(actual) == repr(expected)
    assert checker.lane_fallbacks > 0


@shm_only
def test_unencodable_values_fall_back_with_identical_verdicts():
    # Dict values survive the JSONL codec but not the strict lane codec:
    # the coordinator must detect UnencodableValue and use the pipe.
    txns = [
        Transaction(
            tid=1, sid=1, sno=1,
            ops=[Operation(OpKind.WRITE, "x", {"nested": 1})],
            start_ts=1, commit_ts=2,
        ),
        Transaction(
            tid=2, sid=1, sno=2,
            ops=[Operation(OpKind.READ, "x", {"nested": 1})],
            start_ts=3, commit_ts=4,
        ),
    ]
    expected, _ = _serial_verdicts(txns, n_shards=2)
    actual, checker = _sharded_verdicts(txns, n_shards=2)
    assert repr(actual) == repr(expected)
    assert checker.lane_fallbacks > 0


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------


@shm_only
def test_killed_worker_raises_instead_of_hanging():
    checker = ShardedAion(
        AionConfig(timeout=float("inf")),
        n_shards=2,
        clock=lambda: 0.0,
        executor="shm-process",
    )
    try:
        from repro.workloads.generator import generate_default_history
        from repro.workloads.spec import WorkloadSpec

        spec = WorkloadSpec(
            n_sessions=4, n_transactions=40, ops_per_txn=6, n_keys=16, seed=3
        )
        txns = list(generate_default_history(spec).transactions)
        checker.receive_many(txns[:10])
        for worker in checker._workers:
            os.kill(worker.pid, signal.SIGKILL)
            worker.join(timeout=10)
        assert not checker.workers_alive()
        with pytest.raises(RuntimeError, match="died"):
            checker.receive_many(txns[10:])
    finally:
        checker.close()


@shm_only
def test_wedged_worker_detected_by_heartbeat_and_recovers():
    checker = ShardedAion(
        AionConfig(timeout=float("inf")),
        n_shards=2,
        clock=lambda: 0.0,
        executor="shm-process",
        lane_stall_timeout=0.3,
    )
    try:
        txns = list(ANOMALY_CATALOG["dirty-read"].build().transactions)
        checker.receive_many(txns)
        assert checker.workers_alive()
        victim = checker._workers[1].pid
        os.kill(victim, signal.SIGSTOP)
        try:
            deadline = time.monotonic() + 10
            while checker.workers_alive():
                assert time.monotonic() < deadline, "wedge never detected"
                time.sleep(0.05)
            stalled = [row["shard"] for row in checker.lane_health() if row["stalled"]]
            assert stalled == [1]
        finally:
            os.kill(victim, signal.SIGCONT)
        deadline = time.monotonic() + 10
        while not checker.workers_alive():
            assert time.monotonic() < deadline, "worker never recovered"
            time.sleep(0.05)
    finally:
        checker.close()


@shm_only
def test_lane_health_and_shard_stats_surface_lane_counters():
    checker = ShardedAion(
        AionConfig(timeout=float("inf")),
        n_shards=2,
        clock=lambda: 0.0,
        executor="shm-process",
    )
    try:
        txns = list(ANOMALY_CATALOG["lost-update"].build().transactions)
        checker.receive_many(txns)
        rows = checker.lane_health()
        assert [row["shard"] for row in rows] == [0, 1]
        for row in rows:
            assert row["alive"]
            assert not row["stalled"]
            assert row["heartbeat"] > 0
            assert row["request_backlog_bytes"] == 0
        # The tiny fixture may route every key to one shard, but some
        # shard must have seen lane traffic.
        assert sum(row["request_bytes"] for row in rows) > 0
        stats = checker.shard_stats()
        assert sum(row["lane_bytes"] for row in stats) > 0
        for row in stats:
            assert row["lane_stalled"] == 0
    finally:
        checker.close()


def test_shm_refused_cleanly_when_unavailable(monkeypatch):
    import repro.core.shm as shm_mod

    monkeypatch.setattr(shm_mod, "_available", False)
    with pytest.raises(RuntimeError, match="shared memory"):
        ShardedAion(
            AionConfig(timeout=float("inf")), n_shards=2, executor="shm-process"
        )
