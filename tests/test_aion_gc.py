"""Tests for Aion's garbage collection, spilling and reload-on-demand."""

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import normalize_violations
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def make_aion():
    return Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)


class TestCollectBelow:
    def test_gc_empties_resident_set(self, si_history):
        aion = make_aion()
        for txn in si_history.by_commit_ts():
            aion.receive(txn)
        before = aion.resident_txn_count
        report = aion.collect_below(None)
        assert before == len(si_history)
        assert report.evicted_txns == before
        assert aion.resident_txn_count == 0
        assert aion.spill_store is not None
        assert aion.spill_store.spill_count == 1
        aion.close()

    def test_gc_noop_when_empty(self):
        aion = make_aion()
        report = aion.collect_below(None)
        assert report.effective_ts == -1
        assert report.evicted_txns == 0

    def test_suggest_gc_ts_keeps_margin(self, si_history):
        aion = make_aion()
        for txn in si_history.by_commit_ts():
            aion.receive(txn)
        target = aion.suggest_gc_ts(keep_recent=100)
        assert target is not None
        aion.collect_below(target)
        assert aion.resident_txn_count == 100
        assert aion.suggest_gc_ts(keep_recent=1000) is None  # margin covers all
        aion.close()

    def test_queries_after_gc_remain_exact(self):
        """Keep-newest: visibility above the watermark stays correct."""
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[write("x", 2)])
        history = b.build()
        aion = make_aion()
        for txn in history.transactions:
            aion.receive(txn)
        aion.collect_below(None)
        # A reader above the boundary still sees the kept newest version.
        reader = HistoryBuilder(keys=["x"])
        reader.txn(sid=3, start=10, commit=10, ops=[read("x", 2)])
        late = reader.build().transactions[-1]
        aion.receive(late)
        assert aion.finalize().is_valid
        aion.close()

    def test_delayed_txn_triggers_reload(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=10, commit=11, ops=[write("x", 2)])
        history = b.build()
        delayed_builder = HistoryBuilder(keys=["x"])
        delayed_builder.txn(sid=3, start=3, commit=3, ops=[read("x", 1)], tid=77)
        delayed = delayed_builder.build().transactions[-1]

        aion = make_aion()
        for txn in history.transactions:
            aion.receive(txn)
        aion.collect_below(None)
        assert aion.spill_store.spill_count == 1
        # The delayed reader's snapshot (ts 3) is below the GC boundary:
        # the true floor (x=1 at ts 2) was spilled and must be reloaded.
        aion.receive(delayed)
        result = aion.finalize()
        assert result.is_valid
        assert aion.spill_store.reload_count >= 1
        aion.close()

    def test_delayed_conflict_detected_after_gc(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=5, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=10, commit=11, ops=[write("x", 2)])
        history = b.build()
        overlap_builder = HistoryBuilder(keys=["x"])
        overlap_builder.txn(sid=3, tid=88, start=2, commit=3, ops=[write("y", 9)])
        late = overlap_builder.build().transactions[-1]
        # `late` overlaps txn 1 in time but writes a different key — then
        # a second late txn overlaps on the same key.
        conflict_builder = HistoryBuilder(keys=["x"])
        conflict_builder.txn(sid=4, tid=99, start=2, commit=4, ops=[write("x", 3)])
        conflicting = conflict_builder.build().transactions[-1]

        aion = make_aion()
        for txn in history.transactions:
            aion.receive(txn)
        aion.collect_below(None)
        aion.receive(late)
        aion.receive(conflicting)
        result = aion.finalize()
        pairs = {
            frozenset({v.tid, next(iter(v.conflicting_tids))})
            for v in result.violations
            if v.axiom.value == "NOCONFLICT"
        }
        assert frozenset({1, 99}) in pairs
        aion.close()


class TestDifferentialWithGc:
    def test_aggressive_gc_preserves_verdicts(self):
        history = generate_default_history(
            WorkloadSpec(n_sessions=8, n_transactions=600, ops_per_txn=8, n_keys=120, seed=77)
        )
        offline = normalize_violations(Chronos().check(history))
        aion = make_aion()
        for index, txn in enumerate(history.by_commit_ts()):
            aion.receive(txn)
            if index % 50 == 49:
                aion.collect_below(None)
        assert normalize_violations(aion.finalize()) == offline
        aion.close()

    def test_aion_ser_gc_preserves_verdicts(self):
        history = generate_default_history(
            WorkloadSpec(n_sessions=8, n_transactions=500, ops_per_txn=8, n_keys=120, seed=78)
        )
        offline = normalize_violations(ChronosSer().check(history))
        ser = AionSer(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        for index, txn in enumerate(history.by_commit_ts()):
            ser.receive(txn)
            if index % 50 == 49:
                ser.collect_below(None)
        assert normalize_violations(ser.finalize()) == offline
        ser.close()

    def test_estimated_bytes_drops_after_gc(self, si_history):
        aion = make_aion()
        for txn in si_history.by_commit_ts():
            aion.receive(txn)
        before = aion.estimated_bytes()
        aion.collect_below(None)
        after = aion.estimated_bytes()
        assert after < before
        aion.close()


class TestEmptyGcReportContract:
    def test_requested_ts_echoed_when_empty(self):
        """An empty checker's no-op cycle echoes the requested watermark
        instead of the confusing -1 sentinel (which now only means "no
        watermark at all")."""
        aion = make_aion()
        report = aion.collect_below(500)
        assert report.requested_ts == 500
        assert report.effective_ts == 500
        assert (report.evicted_versions, report.evicted_intervals, report.evicted_txns) == (0, 0, 0)
        assert report.seconds >= 0.0

    def test_requested_ts_echoed_when_empty_ser(self):
        ser = AionSer(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        report = ser.collect_below(500)
        assert report.requested_ts == 500
        assert report.effective_ts == 500
        report = ser.collect_below(None)
        assert report.effective_ts == -1
