"""Tests for the benchmark harness utilities."""

import json

import pytest

from repro.bench.harness import (
    RESULTS_DIR,
    bench_scale,
    cached_default_history,
    format_series,
    format_table,
    peak_alloc_mb,
    pick,
    write_result,
)


class TestScale:
    def test_default_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "smoke"
        assert pick(1, 2, 3) == 1

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert bench_scale() == "paper"
        assert pick(1, 2, 3) == 3

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()


class TestHistoryCache:
    def test_same_args_same_object(self):
        a = cached_default_history(n_sessions=3, n_transactions=50, ops_per_txn=4,
                                   n_keys=10, seed=777)
        b = cached_default_history(n_sessions=3, n_transactions=50, ops_per_txn=4,
                                   n_keys=10, seed=777)
        assert a is b

    def test_different_args_different_history(self):
        a = cached_default_history(n_sessions=3, n_transactions=50, ops_per_txn=4,
                                   n_keys=10, seed=778)
        b = cached_default_history(n_sessions=3, n_transactions=60, ops_per_txn=4,
                                   n_keys=10, seed=778)
        assert a is not b
        assert len(a) != len(b)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 10}]
        table = format_table(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in table  # 4 significant digits

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series([(1.0, 2.0), (3.0, 4.0)], label="L")
        assert text.startswith("L")
        assert "3.00" in text

    def test_write_result_persists(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        rows = [{"k": 1}]
        write_result("selftest", rows, title="self test", notes="note")
        text_file = RESULTS_DIR / "selftest.txt"
        json_file = RESULTS_DIR / "selftest.json"
        assert text_file.exists() and json_file.exists()
        payload = json.loads(json_file.read_text())
        assert payload["rows"] == rows
        assert payload["scale"] == "smoke"
        text_file.unlink()
        json_file.unlink()


class TestPeakAlloc:
    def test_measures_allocation(self):
        result, peak = peak_alloc_mb(lambda: [0] * 500_000)
        assert len(result) == 500_000
        assert peak > 1.0  # >1 MiB for half a million pointers

    def test_small_allocation_small_peak(self):
        _, peak = peak_alloc_mb(lambda: list(range(10)))
        assert peak < 1.0
