"""Resume property suite: interrupted streams equal uninterrupted ones.

The exactly-once claim behind the chaos harness, stated as a property:
for a randomized kill-point schedule (seeded), a client whose connection
is severed mid-stream and transparently resumed must leave the daemon
with the *byte-identical* verdict of an uninterrupted run — the daemon
received every transaction exactly once (``received == sent``, no
duplicates admitted, nothing lost in a dead socket's buffers).

Runs across three checker variants (Aion, AionSer, ShardedAion) and
three seeds each; every kill position derives from the seed, so a
failure reproduces from the parametrization alone.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.db.faults import HistoryFaultInjector
from repro.service import (
    CheckerClient,
    ServiceConfig,
    ServiceThread,
    transactions_in_commit_order,
)
from repro.service.protocol import result_to_dict
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec

BATCH = 10
KILLS = 3

#: Daemon configurations the property must hold for, with a per-variant
#: salt so each variant draws different kill positions from the seed.
VARIANTS = {
    "aion": {"kwargs": {"level": "si", "n_shards": 1}, "salt": 0x01},
    "ser": {"kwargs": {"level": "ser", "n_shards": 1}, "salt": 0x02},
    "sharded": {"kwargs": {"level": "si", "n_shards": 2}, "salt": 0x03},
}

from repro.core.shm import shm_available  # noqa: E402

if shm_available():
    # The shared-memory lane executor must ride out connection chaos
    # exactly like the in-process one (skipped where /dev/shm is absent).
    VARIANTS["sharded-shm"] = {
        "kwargs": {"level": "si", "n_shards": 2, "shard_executor": "shm-process"},
        "salt": 0x04,
    }


@pytest.fixture
def start_service():
    handles = []

    def _start(**kwargs) -> ServiceThread:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("timeout", float("inf"))
        kwargs.setdefault("protocol", "v2")
        handle = ServiceThread(ServiceConfig(**kwargs)).start()
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()


def seeded_workload(seed: int):
    """A generated workload with injected faults, so verdicts are
    non-empty and the byte comparison is not vacuous."""
    history = generate_default_history(
        WorkloadSpec(
            n_sessions=6,
            n_transactions=120,
            ops_per_txn=6,
            n_keys=40,
            seed=seed,
        )
    )
    injector = HistoryFaultInjector(history, seed=seed)
    injector.inject_mix(4)
    return transactions_in_commit_order(injector.build())


def verdict_bytes(result) -> bytes:
    """Canonical serialization: violations sorted so the comparison is
    insensitive to EXT finalization order, strict about everything else."""
    data = result_to_dict(result)
    data["violations"] = sorted(
        data["violations"], key=lambda v: json.dumps(v, sort_keys=True)
    )
    data.pop("summary", None)  # derived from counts; embeds report order
    return json.dumps(data, sort_keys=True).encode()


def run_stream(start_service, txns, variant: str, kill_frames=None):
    """Feed ``txns`` through a fresh daemon; optionally sever the
    connection after each frame number in ``kill_frames``."""
    handle = start_service(**VARIANTS[variant]["kwargs"])
    host, port = handle.tcp_address
    client = CheckerClient(
        host,
        port,
        protocol=2,
        auto_resume=kill_frames is not None,
        reconnect_timeout=10.0,
    )
    client.connect()
    if kill_frames:
        client.chaos_kill_frames.update(kill_frames)
    with client:
        for start in range(0, len(txns), BATCH):
            client.submit_many(txns[start : start + BATCH])
        result = client.finalize()
        stats = client.stats(include_bytes=False)
    return result, stats, client


class TestResumeProperty:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_killed_stream_is_byte_identical(self, start_service, variant, seed):
        txns = seeded_workload(seed)
        n_frames = math.ceil(len(txns) / BATCH)
        rng = random.Random(seed * 7919 + VARIANTS[variant]["salt"])
        kills = set(rng.sample(range(1, n_frames + 1), KILLS))

        base_result, base_stats, _ = run_stream(start_service, txns, variant)
        chaos_result, chaos_stats, chaos_client = run_stream(
            start_service, txns, variant, kill_frames=kills
        )

        # The kills actually happened, and the client rode them out.
        assert chaos_client.reconnects >= 1
        # Exactly-once: nothing lost to a dead socket, nothing admitted
        # twice after a replay (a duplicate would inflate `received`).
        assert base_stats["received"] == len(txns)
        assert chaos_stats["received"] == len(txns)
        assert chaos_stats["processed"] == base_stats["processed"]
        # And the verdicts are byte-identical.
        assert verdict_bytes(chaos_result) == verdict_bytes(base_result)

    def test_clean_resume_run_admits_nothing_twice(self, start_service):
        """A kill landing on the very first frame exercises the replay
        of a batch the daemon never saw (acked_seq still 0)."""
        txns = seeded_workload(seed=5)
        _, stats, client = run_stream(start_service, txns, "aion", kill_frames={1})
        assert client.reconnects >= 1
        assert stats["received"] == len(txns)
        assert stats["sessions"]["resumes"] >= 1
