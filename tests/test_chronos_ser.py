"""Tests for Chronos-SER, the offline serializability checker."""

from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.violations import Axiom
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import append, read, read_list, write


def check(history):
    return ChronosSer().check(history)


class TestSerialOrder:
    def test_serial_history_valid(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[read("x", 1), write("x", 2)])
        b.txn(sid=3, start=5, commit=5, ops=[read("x", 2)])
        assert check(b.build()).is_valid

    def test_stale_snapshot_read_violates_ser(self):
        # SI-legal but not serializable in commit order: reader's snapshot
        # predates a concurrent writer that commits first.
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=2, commit=5, ops=[read("x", 0)])
        result = check(b.build())
        ext = result.by_axiom(Axiom.EXT)
        assert len(ext) == 1 and ext[0].tid == 2
        # ... while the same history satisfies SI.
        b2 = HistoryBuilder(keys=["x"])
        b2.txn(sid=1, tid=1, start=1, commit=4, ops=[write("x", 1)])
        b2.txn(sid=2, tid=2, start=2, commit=5, ops=[read("x", 0)])
        assert Chronos().check(b2.build()).is_valid

    def test_write_skew_violates_ser(self):
        b = HistoryBuilder(keys=["x", "y"])
        b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("y", 1)])
        b.txn(sid=2, start=2, commit=4, ops=[read("y", 0), write("x", 2)])
        result = check(b.build())
        # In commit order, the second transaction must see y=1.
        assert result.by_axiom(Axiom.EXT)

    def test_start_timestamps_ignored(self):
        # Wildly overlapping lifetimes are fine as long as values follow
        # the serial commit order.
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=10, ops=[write("x", 1)])
        b.txn(sid=2, start=2, commit=11, ops=[read("x", 1), write("x", 2)])
        assert check(b.build()).is_valid


class TestSessionUnderSer:
    def test_commit_order_must_respect_session(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, start=5, commit=6, ops=[write("x", 1)])
        b.txn(sid=1, sno=1, start=1, commit=2, ops=[write("x", 2)])  # commits first
        result = check(b.build())
        assert result.by_axiom(Axiom.SESSION)

    def test_sno_gap(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, ops=[write("x", 1)])
        b.txn(sid=1, sno=5, ops=[write("x", 2)])
        assert check(b.build()).by_axiom(Axiom.SESSION)


class TestIntUnderSer:
    def test_internal_semantics_identical(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, ops=[write("x", 1), read("x", 9)])
        result = check(b.build())
        assert [v.axiom for v in result.violations] == [Axiom.INT]


class TestListsUnderSer:
    def test_serial_appends(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[append("l", 2), read_list("l", [1, 2])])
        assert check(b.build()).is_valid

    def test_stale_list_read(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[read_list("l", [])])  # misses element 1
        assert check(b.build()).by_axiom(Axiom.EXT)


class TestEngineHistories:
    def test_ser_engine_history_valid(self, ser_history):
        assert check(ser_history).is_valid

    def test_si_engine_history_fails_ser(self, si_history):
        result = check(si_history)
        assert not result.is_valid
        assert result.by_axiom(Axiom.EXT)

    def test_ser_history_also_satisfies_si(self, ser_history):
        assert Chronos().check(ser_history).is_valid

    def test_report_populated(self, ser_history):
        checker = ChronosSer()
        checker.check(ser_history)
        assert checker.report.n_transactions == len(ser_history)
        assert checker.report.check_seconds > 0
