"""Tests for deep_sizeof and the deterministic RNG helpers."""

from repro.util.rng import derive_rng, make_rng
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap


class TestDeepSizeof:
    def test_atomic(self):
        assert deep_sizeof(42) > 0
        assert deep_sizeof("hello") > deep_sizeof("")

    def test_containers_nest(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_cycles_terminate(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects(self):
        m = SortedMap([(i, "x" * 50) for i in range(100)])
        assert deep_sizeof(m) > 100 * 50

    def test_deep_chain_no_recursion_error(self):
        # Skiplists are long pointer chains; the walk must be iterative.
        m = SortedMap([(i, i) for i in range(50_000)])
        assert deep_sizeof(m) > 50_000

    def test_grows_with_content(self):
        small = SortedMap([(i, i) for i in range(10)])
        large = SortedMap([(i, i) for i in range(1000)])
        assert deep_sizeof(large) > deep_sizeof(small)


class TestRng:
    def test_make_rng_int_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_make_rng_string_seed(self):
        a, b = make_rng("alpha"), make_rng("alpha")
        assert a.random() == b.random()
        assert make_rng("alpha").random() != make_rng("beta").random()

    def test_derive_rng_stable(self):
        assert derive_rng(1, "x", 2).random() == derive_rng(1, "x", 2).random()

    def test_derive_rng_label_independence(self):
        assert derive_rng(1, "x").random() != derive_rng(1, "y").random()
        assert derive_rng(1, "x", 1).random() != derive_rng(1, "x", 2).random()

    def test_label_concatenation_unambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_rng(0, "ab", "c").random() != derive_rng(0, "a", "bc").random()
