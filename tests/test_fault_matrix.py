"""Label-completeness matrix: every fault class × every checker.

:class:`~repro.db.faults.HistoryFaultInjector` produces ground-truth
labels for five axiom-targeted fault classes.  This suite pins down, as
a matrix over (fault class × checker), which labels each checker
detects under its own matching axiom — with tid overlap, not just "some
violation somewhere".  Complete detection is asserted; the one genuine
gap is xfail-documented rather than papered over:

- ``noconflict`` × :class:`AionSer` — NOCONFLICT is the SI-specific
  axiom (§III, SI forbids concurrent write-write overlap outright).
  The SER checker has no NOCONFLICT check by construction: under
  serializability a write-write overlap is only wrong if it perturbs
  some read, which surfaces as EXT — and only for histories where the
  injected overlap actually changes a visible value (seed-dependent,
  observed both ways).  The xfail is strict, so if AionSer ever grows a
  NOCONFLICT check, this file flags the matrix entry for promotion.
"""

from __future__ import annotations

import pytest

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.db.engine import IsolationLevel
from repro.db.faults import HistoryFaultInjector
from repro.service import transactions_in_commit_order
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec

FAULT_CLASSES = ["ext", "int", "session", "noconflict", "ts_order"]
#: Each checker gets histories generated at its own isolation level —
#: an SI execution is legitimately full of EXT violations under SER.
CHECKERS = {
    "aion": (Aion, IsolationLevel.SI),
    "aion_ser": (AionSer, IsolationLevel.SER),
}
SEEDS = [0, 1, 2]


def clean_history(checker_name: str, seed: int):
    return generate_default_history(
        WorkloadSpec(
            n_sessions=6,
            n_transactions=150,
            ops_per_txn=6,
            n_keys=30,
            seed=seed,
            isolation=CHECKERS[checker_name][1],
        )
    )


def checked_violations(checker_name: str, txns):
    checker = CHECKERS[checker_name][0](
        AionConfig(timeout=float("inf")), clock=lambda: 0.0
    )
    checker.receive_many(txns)
    return checker.finalize().violations


def label_detected(label, violations) -> bool:
    """The label's own axiom fired on at least one of its tids."""
    def tids(violation):
        return {violation.tid} | set(
            getattr(violation, "conflicting_tids", ()) or ()
        )

    return any(
        violation.axiom is label.axiom and tids(violation) & set(label.tids)
        for violation in violations
    )


@pytest.mark.parametrize("checker_name", sorted(CHECKERS))
@pytest.mark.parametrize("fault_class", FAULT_CLASSES)
def test_fault_class_detected_by_matching_axiom(fault_class, checker_name):
    if fault_class == "noconflict" and checker_name == "aion_ser":
        pytest.xfail(
            "NOCONFLICT is the SI-only axiom; AionSer folds write-write "
            "conflicts into EXT and only sees them when a read is perturbed"
        )
    detected = 0
    injected = 0
    for seed in SEEDS:
        injector = HistoryFaultInjector(clean_history(checker_name, seed), seed=seed)
        label = getattr(injector, f"inject_{fault_class}")()
        if label is None:
            continue
        injected += 1
        violations = checked_violations(
            checker_name, transactions_in_commit_order(injector.build())
        )
        assert label_detected(label, violations), (
            f"{fault_class} fault (seed {seed}, tids {label.tids}) "
            f"escaped {checker_name}"
        )
        detected += 1
    # The injector found a target in every workload — an empty matrix
    # row would pass vacuously otherwise.
    assert injected == len(SEEDS)
    assert detected == injected


def test_clean_history_raises_no_alarm():
    """The matrix's control row: with no injection, neither checker
    reports anything (the detection assertions above are not tautologies
    of a noisy workload)."""
    for checker_name in CHECKERS:
        txns = transactions_in_commit_order(clean_history(checker_name, seed=0))
        assert checked_violations(checker_name, txns) == []
