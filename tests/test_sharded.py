"""Differential tests: ShardedAion ≡ Aion, across shard counts and modes.

The sharded frontend's whole claim is verdict equivalence (see the
module docstring of :mod:`repro.core.sharded`): for any arrival order,
any shard count, serial or process execution, per-transaction or batched
ingestion, with or without GC — the violation multiset equals
single-shard Aion's, which in turn equals Chronos's.
"""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aion import Aion, AionConfig
from repro.core.chronos import Chronos
from repro.core.reference import normalize_violations
from repro.core.sharded import ShardedAion, shard_of
from repro.histories.anomalies import ANOMALY_CATALOG
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec

from test_differential import (
    session_respecting_shuffle,
    small_history,
    split_session_verdicts,
)


def aion_baseline(txns):
    checker = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    for txn in txns:
        checker.receive(txn)
    result = normalize_violations(checker.finalize())
    checker.close()
    return result


def sharded_verdicts(txns, *, n_shards, batch_size=1, executor="serial", gc_every=None):
    checker = ShardedAion(
        AionConfig(timeout=float("inf")),
        n_shards=n_shards,
        clock=lambda: 0.0,
        executor=executor,
    )
    try:
        for offset in range(0, len(txns), batch_size):
            checker.receive_many(txns[offset : offset + batch_size])
            if gc_every is not None and (offset // batch_size) % gc_every == gc_every - 1:
                checker.collect_below(None)
        return normalize_violations(checker.finalize())
    finally:
        checker.close()


class TestShardRouting:
    def test_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for key in ("x", "key-123", "warehouse:4:stock:9"):
                shard = shard_of(key, n)
                assert 0 <= shard < n
                assert shard == shard_of(key, n)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ShardedAion(n_shards=0)
        with pytest.raises(ValueError):
            ShardedAion(executor="threads")


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
def test_anomaly_catalog_matches_aion(name, n_shards):
    """Identical violation multiset on every canonical anomaly history."""
    history = ANOMALY_CATALOG[name].build()
    txns = list(history.transactions)
    assert sharded_verdicts(txns, n_shards=n_shards) == aion_baseline(txns)


@pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
def test_anomaly_catalog_matches_chronos_oracle(name):
    """The ordered-index engine must reproduce the offline Chronos
    verdicts on every anomaly fixture, under several session-respecting
    arrival orders and batch sizes.

    Chronos shares none of the ordered-index code (SortedMap /
    IntervalIndex / VersionedFrontier), so this is a true cross-engine
    differential: a container regression cannot cancel out.
    """
    history = ANOMALY_CATALOG[name].build()
    offline = split_session_verdicts(
        normalize_violations(Chronos().check(history)), history
    )
    for shuffle_seed, batch_size in ((0, 1), (7, 4), (13, 64)):
        arrival = session_respecting_shuffle(history, Random(shuffle_seed))
        checker = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
        for offset in range(0, len(arrival), batch_size):
            checker.receive_many(arrival[offset : offset + batch_size])
        got = split_session_verdicts(
            normalize_violations(checker.finalize()), history
        )
        checker.close()
        assert got == offline, (name, shuffle_seed, batch_size)


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_paper_fig2_matches_aion(paper_fig2_history, n_shards):
    txns = list(paper_fig2_history.transactions)
    assert sharded_verdicts(txns, n_shards=n_shards) == aion_baseline(txns)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shuffle_seed=st.integers(0, 10_000),
    n_shards=st.sampled_from([1, 2, 4]),
)
def test_randomized_workload_matches_aion(seed, shuffle_seed, n_shards):
    """Clean generator histories under arbitrary session-respecting orders."""
    history = small_history(seed)
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    assert sharded_verdicts(arrival, n_shards=n_shards) == aion_baseline(arrival)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    faults=st.integers(1, 8),
    n_shards=st.sampled_from([2, 4]),
    batch_size=st.sampled_from([1, 7, 64]),
)
def test_faulted_batched_matches_aion(seed, faults, n_shards, batch_size):
    """Fault-injected histories, ingested in batches of several sizes."""
    history = small_history(seed, faults=faults)
    arrival = session_respecting_shuffle(history, Random(seed))
    got = sharded_verdicts(arrival, n_shards=n_shards, batch_size=batch_size)
    assert got == aion_baseline(arrival)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_shards=st.sampled_from([2, 4]),
    gc_every=st.sampled_from([5, 20]),
)
def test_gc_matches_aion(seed, n_shards, gc_every):
    """Per-shard eviction + reload-on-demand preserves verdicts."""
    history = small_history(seed)
    arrival = session_respecting_shuffle(history, Random(seed))
    got = sharded_verdicts(
        arrival, n_shards=n_shards, batch_size=8, gc_every=gc_every
    )
    assert got == aion_baseline(arrival)


def test_unoptimized_recheck_matches_aion():
    """The ablation path (full re-evaluation per write) stays equivalent."""
    history = small_history(321, faults=4)
    arrival = session_respecting_shuffle(history, Random(321))
    aion = Aion(AionConfig(timeout=float("inf"), optimized_recheck=False), clock=lambda: 0.0)
    for txn in arrival:
        aion.receive(txn)
    base = normalize_violations(aion.finalize())
    aion.close()
    sharded = ShardedAion(
        AionConfig(timeout=float("inf"), optimized_recheck=False),
        n_shards=3,
        clock=lambda: 0.0,
    )
    for txn in arrival:
        sharded.receive(txn)
    got = normalize_violations(sharded.finalize())
    sharded.close()
    assert got == base


def test_process_mode_matches_aion():
    """Worker-process shards produce identical verdicts."""
    history = small_history(99, n=150, faults=5)
    arrival = session_respecting_shuffle(history, Random(99))
    got = sharded_verdicts(arrival, n_shards=2, batch_size=25, executor="process")
    assert got == aion_baseline(arrival)


def test_matches_chronos_end_to_end(si_history):
    """On a clean engine history the sharded checker agrees with Chronos."""
    txns = si_history.by_commit_ts()
    offline = normalize_violations(Chronos().check(si_history))
    assert sharded_verdicts(list(txns), n_shards=4, batch_size=100) == offline


def test_receive_many_equals_receive_loop_on_aion():
    """Aion's own batched entry point matches its per-transaction loop."""
    history = small_history(55, faults=3)
    arrival = session_respecting_shuffle(history, Random(55))
    base = aion_baseline(arrival)
    batched = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    for offset in range(0, len(arrival), 32):
        batched.receive_many(arrival[offset : offset + 32])
    got = normalize_violations(batched.finalize())
    batched.close()
    assert got == base


class TestBatchedRunner:
    def _schedule(self, history):
        collector = HistoryCollector(
            batch_size=100, arrival_tps=50_000, delay_model=NormalDelay(20, 5), seed=9
        )
        return collector.schedule(history)

    def test_run_capacity_batched_matches_per_txn(self, si_history):
        schedule = self._schedule(si_history)

        clock = SimClock()
        per_txn = Aion(AionConfig(timeout=float("inf")), clock=clock)
        base_report = OnlineRunner(per_txn, clock).run_capacity(schedule)
        base = normalize_violations(base_report.result)
        per_txn.close()

        clock = SimClock()
        sharded = ShardedAion(AionConfig(timeout=float("inf")), n_shards=4, clock=clock)
        report = OnlineRunner(sharded, clock).run_capacity_batched(
            schedule, batch_size=250
        )
        got = normalize_violations(report.result)
        sharded.close()

        assert got == base
        assert report.n_processed == len(schedule)
        assert report.throughput.total == len(schedule)

    def test_batched_runner_with_gc(self, si_history):
        from repro.online.runner import GcPolicy

        schedule = self._schedule(si_history)
        clock = SimClock()
        sharded = ShardedAion(AionConfig(timeout=float("inf")), n_shards=2, clock=clock)
        report = OnlineRunner(
            sharded, clock, gc_policy=GcPolicy.CHECKING_GC, gc_threshold=400
        ).run_capacity_batched(schedule, batch_size=100)
        assert report.n_gc_cycles >= 1
        assert report.result.is_valid
        sharded.close()

    def test_rejects_bad_batch_size(self, si_history):
        clock = SimClock()
        sharded = ShardedAion(clock=clock, n_shards=2)
        with pytest.raises(ValueError):
            OnlineRunner(sharded, clock).run_capacity_batched(
                self._schedule(si_history), batch_size=0
            )
        sharded.close()


class TestCoordinatorSurface:
    def test_estimated_bytes_grows(self):
        history = small_history(11)
        sharded = ShardedAion(AionConfig(timeout=float("inf")), n_shards=2, clock=lambda: 0.0)
        empty = sharded.estimated_bytes()
        sharded.receive_many(list(history.by_commit_ts()))
        assert sharded.estimated_bytes() > empty
        assert sharded.resident_txn_count == len(history)
        sharded.close()

    def test_estimated_bytes_process_mode(self):
        history = small_history(12, n=60)
        sharded = ShardedAion(
            AionConfig(timeout=float("inf")), n_shards=2, clock=lambda: 0.0,
            executor="process",
        )
        sharded.receive_many(list(history.by_commit_ts()))
        assert sharded.estimated_bytes() > 0
        sharded.close()

    def test_gc_report_counts(self):
        history = small_history(13)
        sharded = ShardedAion(AionConfig(timeout=float("inf")), n_shards=4, clock=lambda: 0.0)
        sharded.receive_many(list(history.by_commit_ts()))
        report = sharded.collect_below(None)
        assert report.evicted_txns == len(history)
        assert sharded.resident_txn_count == 0
        assert sharded.spill_store is not None
        sharded.close()

    def test_empty_gc_echoes_requested_ts(self):
        sharded = ShardedAion(n_shards=2, clock=lambda: 0.0)
        report = sharded.collect_below(123)
        assert report.requested_ts == 123
        assert report.effective_ts == 123
        assert report.evicted_txns == 0
        report = sharded.collect_below(None)
        assert report.effective_ts == -1
        sharded.close()

    def test_append_rejected(self):
        from repro.histories.builder import HistoryBuilder
        from repro.histories.ops import append

        b = HistoryBuilder(with_init=False)
        txn = b.txn(sid=1, ops=[append("l", 1)])
        sharded = ShardedAion(n_shards=2, clock=lambda: 0.0)
        with pytest.raises(ValueError, match="offline"):
            sharded.receive(txn)
        sharded.close()


def test_receive_many_rejects_appends_before_any_state_change():
    """A rejected append mid-batch must not leave earlier batch members
    tracked but timer-less: the whole batch is validated up front."""
    from repro.histories.builder import HistoryBuilder
    from repro.histories.ops import append, read, write

    b = HistoryBuilder(keys=["x", "l"])
    good = b.txn(sid=1, ops=[write("x", 1)])
    bad = b.txn(sid=2, ops=[append("l", 1)])
    b.build()
    for checker in (
        Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0),
        ShardedAion(AionConfig(timeout=float("inf")), n_shards=2, clock=lambda: 0.0),
    ):
        with pytest.raises(ValueError, match="offline"):
            checker.receive_many([good, bad])
        assert checker.processed == 0
        assert checker.resident_txn_count == 0
        checker.close()
