"""Tests for the disk spill store used by Aion's GC."""

from pathlib import Path

from repro.core.spill import SpillStore


class TestSpillStore:
    def test_spill_and_reload_roundtrip(self):
        with SpillStore() as store:
            store.spill(0, 100, {"frontier": {"x": [[10, "a", 1]]}}, n_items=1)
            store.spill(100, 200, {"frontier": {"x": [[150, "b", 2]]}}, n_items=1)
            payloads = store.reload_overlapping(0, 120)
            assert len(payloads) == 2  # second segment's min_ts 100 <= 120
            assert payloads[0]["frontier"]["x"][0][1] == "a"
            assert len(store) == 0

    def test_reload_respects_range(self):
        with SpillStore() as store:
            store.spill(0, 50, {"tag": "old"})
            store.spill(60, 100, {"tag": "new"})
            payloads = store.reload_overlapping(0, 55)
            assert [p["tag"] for p in payloads] == ["old"]
            assert len(store) == 1  # the new segment survives

    def test_reload_unbounded(self):
        with SpillStore() as store:
            store.spill(0, 50, {"tag": "a"})
            store.spill(60, 100, {"tag": "b"})
            assert len(store.reload_overlapping(0, None)) == 2

    def test_min_spilled_ts(self):
        with SpillStore() as store:
            assert store.min_spilled_ts() is None
            store.spill(30, 50, {})
            store.spill(10, 20, {})
            assert store.min_spilled_ts() == 10

    def test_files_created_and_removed(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        segment = store.spill(0, 10, {"k": 1})
        assert segment.path.exists()
        store.reload_overlapping(0, None)
        assert not segment.path.exists()
        store.close()
        assert (tmp_path / "spill").exists()  # caller-owned dir kept

    def test_owned_tempdir_removed_on_close(self):
        store = SpillStore()
        directory = store.directory
        store.spill(0, 10, {"k": 1})
        store.close()
        assert not Path(directory).exists()

    def test_io_accounting(self):
        with SpillStore() as store:
            store.spill(0, 10, {"payload": "x" * 100})
            assert store.bytes_written > 100
            assert store.spill_count == 1
            store.reload_overlapping(0, None)
            assert store.bytes_read > 100
            assert store.reload_count == 1
