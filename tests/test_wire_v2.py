"""Protocol v2 codec tests: v1 equivalence and malformed-frame fuzzing.

Two claims carry the wire upgrade:

1. **Equivalence** — for every message type and every value shape the v1
   ndjson codec accepts, decoding the v2 encoding yields exactly what
   decoding the v1 encoding yields (the shallow-tuple semantics
   included).  v2 may be a strict extension (⊥v travels natively in
   columnar packs), never a divergence.
2. **Robustness** — a torn, truncated, oversized, bit-flipped, or
   wrong-magic frame raises :class:`ProtocolError`.  It never raises
   anything else, never crashes the decoder, and never silently returns
   a truncated batch.
"""

from __future__ import annotations

import json
import random
import struct

import pytest

from repro.core.common import BOTTOM
from repro.histories.model import Operation, OpKind, Transaction
from repro.histories.serialization import (
    ColumnarBatch,
    pack_columnar,
    txn_from_dict,
    txn_to_dict,
    unpack_columnar,
)
from repro.service.framing import (
    CLIENT_KIND_OF_TYPE,
    FRAME_MAGIC0,
    FRAME_MAGIC1,
    HEADER_SIZE,
    K_SUBMIT,
    MAX_PAYLOAD_BYTES,
    SERVER_KIND_OF_TYPE,
    TYPE_OF_KIND,
    decode_frame_header,
    decode_frame_payload,
    encode_json_frame,
    encode_submit_frame,
)
from repro.service.protocol import ProtocolError, decode_line, encode_message


def txn(tid, ops, *, sid=1, sno=1, sts=None, cts=None):
    return Transaction(
        tid=tid,
        sid=sid,
        sno=sno,
        ops=[Operation(*op) for op in ops],
        start_ts=sts if sts is not None else tid * 10,
        commit_ts=cts if cts is not None else tid * 10 + 5,
    )


def v1_txn_round_trip(transaction):
    """The reference semantics: what the ndjson submit path produces."""
    wire = json.loads(json.dumps(txn_to_dict(transaction)))
    return txn_from_dict(wire)


def v2_txn_round_trip(transaction):
    batch, consumed = unpack_columnar(pack_columnar([transaction]))
    assert consumed == len(pack_columnar([transaction]))
    (decoded,) = batch.transactions()
    return decoded


def assert_txns_equal(a, b):
    assert (a.tid, a.sid, a.sno, a.start_ts, a.commit_ts) == (
        b.tid,
        b.sid,
        b.sno,
        b.start_ts,
        b.commit_ts,
    )
    assert len(a.ops) == len(b.ops)
    for op_a, op_b in zip(a.ops, b.ops):
        assert op_a.kind is op_b.kind
        assert op_a.key == op_b.key
        assert op_a.value == op_b.value
        assert type(op_a.value) is type(op_b.value)


# Every value shape the v1 codec can carry, including the ones that
# historically bite: ⊥-adjacent sentinels, i64 boundaries, big ints that
# spill to JSON, shallow tuples whose nested sequences decode as lists,
# dicts whose keys collide with the "$" tag namespace, unicode keys.
TRICKY_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    41,
    2**63 - 1,
    -(2**63),
    2**63,          # one past i64: must take the JSON spill path
    -(2**63) - 1,
    10**30,
    3.5,
    -0.0,
    1e308,
    "",
    "value",
    "ünïcodé ✓ 値",
    "$",
    (),
    (1, 2, 3),
    ("a", None, True),
    (1, (2, 3)),          # nested tuple: both codecs yield (1, [2, 3])
    ((), (1,), "x"),
    {"$": "bottom"},      # a *dict* that looks like a v1 value tag
    {"k": [1, 2], "nested": {"deep": None}},
    {},
]


class TestSubmitCodecEquivalence:
    @pytest.mark.parametrize("value", TRICKY_VALUES, ids=repr)
    def test_single_value_equivalence(self, value):
        transaction = txn(
            1, [(OpKind.WRITE, "k", value), (OpKind.READ, "ünïkey ✓", value)]
        )
        via_v1 = v1_txn_round_trip(transaction)
        via_v2 = v2_txn_round_trip(transaction)
        assert_txns_equal(via_v1, via_v2)

    def test_every_op_kind(self):
        transaction = txn(
            2,
            [
                (OpKind.READ, "r", 7),
                (OpKind.WRITE, "w", "x"),
                (OpKind.APPEND, "l", 3),
                (OpKind.READ_LIST, "l", (1, 2, 3)),
            ],
        )
        assert_txns_equal(v1_txn_round_trip(transaction), v2_txn_round_trip(transaction))

    def test_bottom_is_a_strict_v2_extension(self):
        # ⊥v cannot cross the v1 submit codec (json.dumps refuses it);
        # the columnar codec carries it natively and exactly.
        transaction = txn(3, [(OpKind.READ, "k", BOTTOM)])
        with pytest.raises(TypeError):
            json.dumps(txn_to_dict(transaction))
        assert v2_txn_round_trip(transaction).ops[0].value is BOTTOM

    def test_unencodable_value_is_a_shared_contract(self):
        # What v1 cannot encode, v2 must also refuse — no silent divergence.
        transaction = txn(4, [(OpKind.WRITE, "k", object())])
        with pytest.raises(TypeError):
            json.dumps(txn_to_dict(transaction))
        with pytest.raises(TypeError):
            pack_columnar([transaction])

    def test_large_batch_round_trip(self):
        rng = random.Random(1213)
        txns = []
        for tid in range(1, 801):
            ops = []
            for _ in range(rng.randrange(1, 6)):
                kind = rng.choice((OpKind.READ, OpKind.WRITE))
                key = f"key-{rng.randrange(40)}"
                ops.append((kind, key, rng.choice(TRICKY_VALUES)))
            txns.append(txn(tid, ops, sid=tid % 7, sno=tid // 7 + 1))
        batch, _ = unpack_columnar(pack_columnar(txns))
        assert len(batch) == len(txns)
        for original, decoded in zip(txns, batch.transactions()):
            assert_txns_equal(v1_txn_round_trip(original), decoded)

    def test_slices_partition_batch(self):
        txns = [txn(tid, [(OpKind.WRITE, "k", tid)]) for tid in range(1, 26)]
        batch, _ = unpack_columnar(pack_columnar(txns))
        pieces = list(batch.slices(7))
        assert [len(piece) for piece in pieces] == [7, 7, 7, 4]
        reassembled = [t for piece in pieces for t in piece.transactions()]
        for original, decoded in zip(txns, reassembled):
            assert_txns_equal(original, decoded)


class TestZeroCopyReceive:
    """The submit decode path must parse in place, never copying the
    payload before the columnar arrays are materialized."""

    def _payload(self):
        transaction = txn(1, [(OpKind.WRITE, "k", "v"), (OpKind.READ, "k", 7)])
        frame = encode_submit_frame([transaction], 7)
        return bytes(frame[HEADER_SIZE:])

    def _spy(self, monkeypatch):
        from repro.service import framing

        captured = {}
        real = framing.unpack_columnar

        def spy(buf, offset=0):
            captured["buf"] = buf
            return real(buf, offset)

        monkeypatch.setattr(framing, "unpack_columnar", spy)
        return captured

    def test_bytes_payload_is_wrapped_not_copied(self, monkeypatch):
        payload = self._payload()
        captured = self._spy(monkeypatch)
        message = decode_frame_payload(K_SUBMIT, payload)
        assert message["seq"] == 7
        buf = captured["buf"]
        assert type(buf) is memoryview
        # .obj identity: the view looks straight into the received bytes.
        assert buf.obj is payload

    def test_memoryview_payload_passes_through_unwrapped(self, monkeypatch):
        backing = self._payload()
        view = memoryview(backing)
        captured = self._spy(monkeypatch)
        decode_frame_payload(K_SUBMIT, view)
        assert captured["buf"] is view
        assert captured["buf"].obj is backing

    def test_decoded_batch_equals_copy_decoded_batch(self):
        payload = self._payload()
        via_view = decode_frame_payload(K_SUBMIT, memoryview(payload))
        via_bytes = decode_frame_payload(K_SUBMIT, bytes(payload))
        for a, b in zip(
            via_view["batch"].transactions(), via_bytes["batch"].transactions()
        ):
            assert_txns_equal(a, b)


def control_messages():
    """One representative message per v2 kind (submit excluded)."""
    samples = {
        "hello": {"type": "hello", "client": "probe", "protocol": 2},
        "subscribe": {"type": "subscribe", "seq": 4, "replay": True},
        "stats": {"type": "stats", "seq": 5, "bytes": False},
        "drain": {"type": "drain", "seq": 6},
        "finalize": {"type": "finalize", "seq": 7},
        "shutdown": {"type": "shutdown"},
        "ping": {"type": "ping", "seq": 8},
        "welcome": {"type": "welcome", "protocol": 2, "protocols": [1, 2],
                    "checker": "aion", "level": "si"},
        "ack": {"type": "ack", "seq": 9, "enqueued": 500},
        "violation": {"type": "violation", "violation": {
            "axiom": "EXT", "tid": 3, "kind": "ext", "key": "ünïkey ✓",
            "expected": {"$": "bottom"}, "actual": {"$": "obj", "value": {"$": 1}},
        }},
        "drained": {"type": "drained", "seq": 10, "processed": 12_000},
        "result": {"type": "result", "valid": False, "summary": "1 violation",
                   "counts": {"EXT": 1}, "violations": []},
        "pong": {"type": "pong", "seq": 11},
        "error": {"type": "error", "seq": 12, "message": "nö ✗"},
        "bye": {"type": "bye"},
        "subscribed": {"type": "subscribed", "seq": 13},
    }
    for name, message in samples.items():
        kind = CLIENT_KIND_OF_TYPE.get(name) or SERVER_KIND_OF_TYPE[name]
        yield kind, message
    # "stats" names both a request and a reply; the reply kind differs.
    yield SERVER_KIND_OF_TYPE["stats"], {
        "type": "stats", "seq": 5, "stats": {"processed": 3, "wire": {}}
    }


class TestControlFrameEquivalence:
    def test_covers_every_kind(self):
        covered = {kind for kind, _ in control_messages()} | {K_SUBMIT}
        assert covered == set(TYPE_OF_KIND)

    @pytest.mark.parametrize(
        "kind,message", list(control_messages()), ids=lambda p: str(p)
    )
    def test_v2_decodes_to_exactly_the_v1_message(self, kind, message):
        via_v1 = decode_line(encode_message(message).rstrip(b"\n"))
        frame = encode_json_frame(kind, message)
        got_kind, length = decode_frame_header(frame[:HEADER_SIZE])
        assert got_kind == kind
        payload = frame[HEADER_SIZE:]
        assert len(payload) == length
        via_v2 = decode_frame_payload(kind, payload)
        assert via_v2 == via_v1 == message

    def test_first_byte_disambiguates(self):
        # The whole mixed-protocol story rests on 0xA6 never starting an
        # ndjson line: it is not ASCII and not a UTF-8 leading byte.
        for kind, message in control_messages():
            assert encode_message(message)[0] != FRAME_MAGIC0
            assert encode_json_frame(kind, message)[0] == FRAME_MAGIC0
        assert encode_submit_frame([txn(1, [(OpKind.READ, "k", 1)])])[0] == FRAME_MAGIC0
        with pytest.raises(UnicodeDecodeError):
            bytes([FRAME_MAGIC0]).decode("utf-8")


class TestMalformedFrames:
    def submit_frame(self):
        txns = [
            txn(tid, [(OpKind.WRITE, f"key-{tid % 5}", tid), (OpKind.READ, "k", "v")])
            for tid in range(1, 40)
        ]
        return encode_submit_frame(txns, 17)

    def decode_full(self, frame):
        kind, length = decode_frame_header(frame[:HEADER_SIZE])
        payload = frame[HEADER_SIZE:]
        if len(payload) != length:
            raise ProtocolError(f"torn frame: {len(payload)} of {length} bytes")
        return decode_frame_payload(kind, payload)

    def test_wrong_magic(self):
        frame = bytearray(self.submit_frame())
        for index, original in ((0, FRAME_MAGIC0), (1, FRAME_MAGIC1)):
            mutated = bytearray(frame)
            mutated[index] = original ^ 0xFF
            with pytest.raises(ProtocolError):
                self.decode_full(bytes(mutated))

    def test_wrong_version(self):
        frame = bytearray(self.submit_frame())
        frame[2] = 3
        with pytest.raises(ProtocolError):
            self.decode_full(bytes(frame))

    def test_unknown_kind(self):
        frame = bytearray(self.submit_frame())
        frame[3] = 99
        with pytest.raises(ProtocolError):
            self.decode_full(bytes(frame))

    def test_oversized_length_rejected_from_header_alone(self):
        header = struct.pack(
            "!BBBBI", FRAME_MAGIC0, FRAME_MAGIC1, 2, K_SUBMIT, MAX_PAYLOAD_BYTES + 1
        )
        with pytest.raises(ProtocolError):
            decode_frame_header(header)

    def test_short_header(self):
        frame = self.submit_frame()
        for cut in range(HEADER_SIZE):
            with pytest.raises(ProtocolError):
                decode_frame_header(frame[:cut])

    def test_truncated_payload_every_boundary(self):
        # Chop the payload at every length: a torn frame must never
        # decode into a silently truncated batch.
        frame = self.submit_frame()
        kind, length = decode_frame_header(frame[:HEADER_SIZE])
        payload = frame[HEADER_SIZE:]
        full = decode_frame_payload(kind, payload)
        assert len(full["batch"]) == 39 and full["seq"] == 17
        step = 7  # every 7th cut keeps the test fast; 0..4 hit the seq prefix
        for cut in list(range(0, 5)) + list(range(5, length, step)):
            with pytest.raises(ProtocolError):
                decode_frame_payload(kind, payload[:cut])

    def test_trailing_garbage_rejected(self):
        frame = self.submit_frame()
        kind, _ = decode_frame_header(frame[:HEADER_SIZE])
        with pytest.raises(ProtocolError):
            decode_frame_payload(kind, frame[HEADER_SIZE:] + b"\x00")

    def test_byte_flips_never_crash(self):
        # A flipped payload byte may still decode (e.g. a character
        # inside a value string) — but it must either decode into a
        # well-formed batch or raise ProtocolError, never anything else.
        frame = self.submit_frame()
        kind, _ = decode_frame_header(frame[:HEADER_SIZE])
        payload = bytearray(frame[HEADER_SIZE:])
        rng = random.Random(42)
        outcomes = {"ok": 0, "rejected": 0}
        for _ in range(400):
            index = rng.randrange(len(payload))
            original = payload[index]
            payload[index] ^= 1 << rng.randrange(8)
            try:
                message = decode_frame_payload(kind, bytes(payload))
            except ProtocolError:
                outcomes["rejected"] += 1
            else:
                assert isinstance(message["batch"], ColumnarBatch)
                outcomes["ok"] += 1
            finally:
                payload[index] = original
        # The corpus must actually exercise the rejection path.
        assert outcomes["rejected"] > 0

    def test_json_frame_kind_type_mismatch(self):
        message = {"type": "ping", "seq": 1}
        frame = encode_json_frame(CLIENT_KIND_OF_TYPE["stats"], message)
        kind, _ = decode_frame_header(frame[:HEADER_SIZE])
        with pytest.raises(ProtocolError):
            decode_frame_payload(kind, frame[HEADER_SIZE:])

    def test_json_frame_payload_garbage(self):
        for payload in (b"not json", b"[1,2]", b'"str"', b"\xff\xfe"):
            with pytest.raises(ProtocolError):
                decode_frame_payload(CLIENT_KIND_OF_TYPE["ping"], payload)

    def test_submit_payload_too_short_for_seq(self):
        for payload in (b"", b"\x00", b"\x00\x00\x00"):
            with pytest.raises(ProtocolError):
                decode_frame_payload(K_SUBMIT, payload)
