"""Tests for EXT verdict tracking: flip-flops, timeouts, rectify times."""

from repro.core.ext_status import (
    EV_FLIPS,
    EV_KEY,
    EV_OK,
    EV_TID,
    ExtStatusTracker,
    FlipFlopStats,
)


def make_tracker(timeout=5.0, violations=None, finalized=None):
    violations = violations if violations is not None else []
    finalized = finalized if finalized is not None else []
    return ExtStatusTracker(
        timeout=timeout,
        on_violation=violations.append,
        on_finalized=finalized.append,
    ), violations, finalized


class TestLifecycle:
    def test_ok_verdict_finalizes_silently(self):
        tracker, violations, finalized = make_tracker()
        tracker.track(1, "x", 10, actual="v", ok=True, expected="v", now=0.0)
        tracker.arm_timer(1, now=0.0)
        done = tracker.advance_to(5.0)
        assert len(done) == 1 and done[0][EV_OK]
        assert violations == []
        assert [v[EV_TID] for v in finalized] == [1]

    def test_wrong_verdict_reported_at_timeout(self):
        tracker, violations, _ = make_tracker()
        tracker.track(1, "x", 10, actual="v", ok=False, expected="w", now=0.0)
        tracker.arm_timer(1, now=0.0)
        assert tracker.advance_to(4.9) == []  # not yet due
        tracker.advance_to(5.0)
        assert len(violations) == 1
        assert violations[0][EV_TID] == 1 and violations[0][EV_KEY] == "x"

    def test_rectified_before_timeout_not_reported(self):
        tracker, violations, _ = make_tracker()
        tracker.track(1, "x", 10, actual="v", ok=False, expected="w", now=0.0)
        tracker.arm_timer(1, now=0.0)
        tracker.reevaluate(1, "x", ok=True, expected="v", now=0.010)
        tracker.advance_to(10.0)
        assert violations == []
        assert tracker.stats.rectify_times == [0.010]

    def test_finalized_pairs_never_reevaluated(self):
        tracker, violations, _ = make_tracker()
        tracker.track(1, "x", 10, actual="v", ok=False, expected="w", now=0.0)
        tracker.arm_timer(1, now=0.0)
        tracker.advance_to(5.0)
        assert tracker.is_timed_out(1)
        assert tracker.reevaluate(1, "x", ok=True, expected="v", now=6.0) is None
        assert len(violations) == 1  # still exactly one report

    def test_flush_finalizes_everything(self):
        tracker, violations, _ = make_tracker(timeout=float("inf"))
        tracker.track(1, "x", 10, actual="v", ok=False, expected="w", now=0.0)
        tracker.arm_timer(1, now=0.0)
        assert tracker.advance_to(1e9) == []  # infinite timeout never due
        tracker.flush()
        assert len(violations) == 1

    def test_multiple_keys_per_txn(self):
        tracker, violations, _ = make_tracker()
        tracker.track(1, "x", 10, actual="a", ok=False, expected="b", now=0.0)
        tracker.track(1, "y", 10, actual="c", ok=True, expected="c", now=0.0)
        tracker.arm_timer(1, now=0.0)
        tracker.advance_to(5.0)
        assert [(v[EV_TID], v[EV_KEY]) for v in violations] == [(1, "x")]


class TestFlipFlopAccounting:
    def test_flip_counted_on_change_only(self):
        tracker, _, _ = make_tracker()
        verdict = tracker.track(1, "x", 10, actual="v", ok=True, expected="v", now=0.0)
        tracker.reevaluate(1, "x", ok=True, expected="v", now=1.0)  # no change
        assert verdict[EV_FLIPS] == 0
        tracker.reevaluate(1, "x", ok=False, expected="w", now=2.0)
        assert verdict[EV_FLIPS] == 1
        tracker.reevaluate(1, "x", ok=True, expected="v", now=3.0)
        assert verdict[EV_FLIPS] == 2
        assert tracker.stats.rectify_times == [1.0]  # wrong from t=2 to t=3

    def test_histogram_buckets(self):
        stats = FlipFlopStats()
        stats.flips_per_pair = {1: 10, 2: 5, 3: 2, 7: 1}
        histogram = stats.flip_histogram()
        assert histogram == {"1": 10, "2": 5, "3": 2, "4+": 1}

    def test_rectify_histogram_buckets(self):
        stats = FlipFlopStats()
        stats.rectify_times = [0.0005, 0.0015, 0.005, 0.05, 0.5, 2.0]
        histogram = stats.rectify_histogram()
        assert histogram == {
            "0-1ms": 1,
            "1-2ms": 1,
            "2-10ms": 1,
            "10-99ms": 1,
            "100-999ms": 1,
            "1000+ms": 1,
        }

    def test_stats_final_counts(self):
        tracker, _, _ = make_tracker()
        tracker.track(1, "x", 10, actual="v", ok=False, expected="w", now=0.0)
        tracker.arm_timer(1, now=0.0)
        tracker.reevaluate(1, "x", ok=True, expected="v", now=0.5)
        tracker.reevaluate(1, "x", ok=False, expected="z", now=0.7)
        tracker.advance_to(5.0)
        assert tracker.stats.n_finalized == 1
        assert tracker.stats.n_final_violations == 1
        assert tracker.stats.flips_per_pair == {2: 1}
        assert tracker.stats.flipped_tids == {1}

    def test_min_pending_snapshot(self):
        tracker, _, _ = make_tracker()
        assert tracker.min_pending_snapshot_ts() is None
        tracker.track(1, "x", 30, actual="v", ok=True, expected="v", now=0.0)
        tracker.track(2, "y", 10, actual="v", ok=True, expected="v", now=0.0)
        assert tracker.min_pending_snapshot_ts() == 10
