"""Unit and model-based tests for the bisect-backed SortedMap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.util.sortedmap import SortedMap


class TestBasics:
    def test_empty(self):
        m = SortedMap()
        assert len(m) == 0
        assert not m
        assert 1 not in m
        assert list(m.items()) == []
        assert m.floor_item(10) is None
        assert m.ceiling_item(10) is None

    def test_set_get_delete(self):
        m = SortedMap()
        m[5] = "five"
        m[3] = "three"
        m[7] = "seven"
        assert m[5] == "five"
        assert len(m) == 3
        assert list(m.keys()) == [3, 5, 7]
        del m[5]
        assert 5 not in m
        assert list(m.keys()) == [3, 7]
        with pytest.raises(KeyError):
            del m[5]
        with pytest.raises(KeyError):
            _ = m[5]

    def test_overwrite_keeps_length(self):
        m = SortedMap()
        m[1] = "a"
        m[1] = "b"
        assert len(m) == 1
        assert m[1] == "b"

    def test_get_default_and_setdefault(self):
        m = SortedMap()
        assert m.get(9) is None
        assert m.get(9, "d") == "d"
        assert m.setdefault(9, "x") == "x"
        assert m.setdefault(9, "y") == "x"

    def test_pop(self):
        m = SortedMap([(1, "a")])
        assert m.pop(1) == "a"
        assert m.pop(1, "default") == "default"
        with pytest.raises(KeyError):
            m.pop(1)

    def test_min_max(self):
        m = SortedMap([(i, i * 10) for i in (4, 1, 9, 6)])
        assert m.min_item() == (1, 10)
        assert m.max_item() == (9, 90)
        empty = SortedMap()
        with pytest.raises(KeyError):
            empty.min_item()
        with pytest.raises(KeyError):
            empty.max_item()

    def test_clear(self):
        m = SortedMap([(1, "a"), (2, "b")])
        m.clear()
        assert len(m) == 0
        m[3] = "c"
        assert list(m.items()) == [(3, "c")]


class TestOrderedQueries:
    @pytest.fixture
    def m(self):
        return SortedMap([(10, "a"), (20, "b"), (30, "c")])

    def test_floor(self, m):
        assert m.floor_item(5) is None
        assert m.floor_item(10) == (10, "a")
        assert m.floor_item(25) == (20, "b")
        assert m.floor_item(99) == (30, "c")

    def test_lower(self, m):
        assert m.lower_item(10) is None
        assert m.lower_item(11) == (10, "a")
        assert m.lower_item(30) == (20, "b")

    def test_ceiling(self, m):
        assert m.ceiling_item(5) == (10, "a")
        assert m.ceiling_item(10) == (10, "a")
        assert m.ceiling_item(21) == (30, "c")
        assert m.ceiling_item(31) is None

    def test_higher(self, m):
        assert m.higher_item(9) == (10, "a")
        assert m.higher_item(10) == (20, "b")
        assert m.higher_item(30) is None

    def test_irange_default_inclusive(self, m):
        assert list(m.irange(10, 30)) == [(10, "a"), (20, "b"), (30, "c")]
        assert list(m.irange(11, 29)) == [(20, "b")]
        assert list(m.irange(None, 20)) == [(10, "a"), (20, "b")]
        assert list(m.irange(20, None)) == [(20, "b"), (30, "c")]

    def test_irange_exclusive_endpoints(self, m):
        assert list(m.irange(10, 30, inclusive=(False, True))) == [(20, "b"), (30, "c")]
        assert list(m.irange(10, 30, inclusive=(True, False))) == [(10, "a"), (20, "b")]
        assert list(m.irange(10, 30, inclusive=(False, False))) == [(20, "b")]

    def test_pop_below_inclusive(self, m):
        removed = m.pop_below(20)
        assert removed == [(10, "a"), (20, "b")]
        assert list(m.keys()) == [30]

    def test_pop_below_exclusive(self, m):
        removed = m.pop_below(20, inclusive=False)
        assert removed == [(10, "a")]
        assert list(m.keys()) == [20, 30]

    def test_pop_below_nothing(self, m):
        assert m.pop_below(5) == []
        assert len(m) == 3

    def test_pop_below_everything_then_reuse(self, m):
        removed = m.pop_below(1_000)
        assert len(removed) == 3
        assert len(m) == 0
        m[40] = "d"
        assert m.floor_item(50) == (40, "d")


class TestScale:
    def test_many_inserts_sorted(self):
        m = SortedMap()
        import random

        values = list(range(2000))
        random.Random(7).shuffle(values)
        for v in values:
            m[v] = v * 2
        assert list(m.keys()) == sorted(values)
        assert m.floor_item(999) == (999, 1998)
        assert len(m) == 2000

    def test_interleaved_delete(self):
        m = SortedMap([(i, i) for i in range(500)])
        for i in range(0, 500, 2):
            del m[i]
        assert list(m.keys()) == list(range(1, 500, 2))
        assert m.floor_item(100) == (99, 99)


@settings(max_examples=300, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["set", "del", "floor", "ceiling", "pop_below"]),
            st.integers(min_value=-50, max_value=50),
        ),
        max_size=60,
    )
)
def test_matches_dict_model(ops):
    """Model-based: SortedMap behaves like a sorted dict."""
    m = SortedMap()
    model: dict = {}
    for op, key in ops:
        if op == "set":
            m[key] = key
            model[key] = key
        elif op == "del":
            if key in model:
                del m[key]
                del model[key]
            else:
                assert key not in m
        elif op == "floor":
            expected = max((k for k in model if k <= key), default=None)
            got = m.floor_item(key)
            assert (got[0] if got else None) == expected
        elif op == "ceiling":
            expected = min((k for k in model if k >= key), default=None)
            got = m.ceiling_item(key)
            assert (got[0] if got else None) == expected
        else:  # pop_below
            removed = {k for k, _ in m.pop_below(key)}
            expected_removed = {k for k in model if k <= key}
            assert removed == expected_removed
            for k in expected_removed:
                del model[k]
        assert len(m) == len(model)
        assert list(m.keys()) == sorted(model)


class SortedMapMachine(RuleBasedStateMachine):
    """Stateful fuzzing against a dict model."""

    def __init__(self):
        super().__init__()
        self.map = SortedMap()
        self.model = {}

    keys = Bundle("keys")

    @rule(target=keys, k=st.integers(-1000, 1000))
    def add_key(self, k):
        self.map[k] = str(k)
        self.model[k] = str(k)
        return k

    @rule(k=keys)
    def delete_key(self, k):
        if k in self.model:
            del self.map[k]
            del self.model[k]

    @rule(k=st.integers(-1000, 1000))
    def query(self, k):
        assert self.map.get(k) == self.model.get(k)

    @invariant()
    def sorted_and_sized(self):
        assert list(self.map.keys()) == sorted(self.model)
        assert len(self.map) == len(self.model)


TestSortedMapStateful = SortedMapMachine.TestCase
TestSortedMapStateful.settings = settings(max_examples=30, stateful_step_count=40, deadline=None)


class TestChunkBoundaries:
    """The two-level layout must behave identically across chunk splits."""

    def test_multi_chunk_queries(self):
        from random import Random

        n = 6000  # forces several chunk splits (split threshold is 2048)
        keys = list(range(0, 2 * n, 2))
        Random(11).shuffle(keys)
        m = SortedMap()
        for k in keys:
            m[k] = k
        assert len(m) == n
        assert list(m.keys()) == sorted(keys)
        chunk_count = len(m._maxes)
        assert chunk_count > 1, "test must span multiple chunks"
        for probe in range(-1, 2 * n + 1, 7):
            lo = probe - (probe % 2)  # greatest even <= probe
            assert m.floor_item(probe) == ((lo, lo) if lo >= 0 else None)
            hi = probe + 1 if probe % 2 else probe  # least even >= probe
            expected = (hi, hi) if hi < 2 * n else None
            assert m.ceiling_item(probe) == expected

    def test_irange_inverted_bounds_empty(self):
        # Regression: a low bound above the high bound must yield nothing,
        # including when the two cursors land in different chunks.
        m = SortedMap([(i, i) for i in range(5000)])
        assert len(m._maxes) > 1
        assert list(m.irange(4000, 100)) == []
        assert list(m.irange(100, 100, inclusive=(True, False))) == []
        assert list(m.irange(100, 99)) == []
        assert list(m.irange(4999, 4000)) == []

    def test_pop_below_drops_whole_chunks(self):
        m = SortedMap([(i, i) for i in range(5000)])
        n_chunks = len(m._maxes)
        assert n_chunks >= 2
        removed = m.pop_below(2499)
        assert len(removed) == 2500
        assert removed == [(i, i) for i in range(2500)]
        assert m.min_item() == (2500, 2500)
        assert list(m.keys()) == list(range(2500, 5000))

    def test_delete_emptying_a_chunk(self):
        m = SortedMap([(i, i) for i in range(4500)])
        boundaries = [c[0] for c in m._keys]
        # Empty the first chunk entirely, one delete at a time.
        first_len = len(m._keys[0])
        for i in range(first_len):
            del m[i]
        assert m.min_item()[0] == first_len
        assert boundaries[1] in m
        assert list(m.keys()) == list(range(first_len, 4500))


class TestDifferentialOracle:
    """Randomized differential test against a sorted-dict oracle.

    Thousands of mixed operations (set / set_item / set_and_higher /
    setdefault / del / floor / ceiling / lower / higher / irange /
    pop_below) driven through both the chunked container and a plain
    ``dict`` + sorted key list, asserting identical behaviour at every
    step.  Key range and op count are sized to force chunk splits and
    whole-chunk removals.
    """

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_mixed_ops_match_oracle(self, seed):
        from bisect import bisect_left as bl, bisect_right as br, insort
        from random import Random

        rng = Random(seed)
        m = SortedMap()
        model: dict = {}
        okeys: list = []  # sorted oracle keys

        def oracle_add(k, v):
            if k not in model:
                insort(okeys, k)
            model[k] = v

        for step in range(4000):
            op = rng.randrange(12)
            k = rng.randrange(6000)
            if op <= 2:
                m[k] = ("set", k)
                oracle_add(k, ("set", k))
            elif op == 3:
                was = m.set_item(k, ("si", k))
                assert was == (k in model)
                oracle_add(k, ("si", k))
            elif op == 4:
                j = br(okeys, k)
                expected_next = (
                    (okeys[j], model[okeys[j]]) if j < len(okeys) else None
                )
                was, nxt = m.set_and_higher(k, ("sah", k))
                assert was == (k in model)
                assert nxt == expected_next
                oracle_add(k, ("sah", k))
            elif op == 5:
                got = m.setdefault(k, ("sd", k))
                assert got == model.get(k, ("sd", k))
                oracle_add(k, got)
            elif op == 6:
                if k in model:
                    del m[k]
                    del model[k]
                    del okeys[bl(okeys, k)]
                else:
                    with pytest.raises(KeyError):
                        del m[k]
            elif op == 7:
                j = br(okeys, k) - 1
                expected = (okeys[j], model[okeys[j]]) if j >= 0 else None
                assert m.floor_item(k) == expected
                j = bl(okeys, k) - 1
                expected = (okeys[j], model[okeys[j]]) if j >= 0 else None
                assert m.lower_item(k) == expected
            elif op == 8:
                j = bl(okeys, k)
                expected = (okeys[j], model[okeys[j]]) if j < len(okeys) else None
                assert m.ceiling_item(k) == expected
                j = br(okeys, k)
                expected = (okeys[j], model[okeys[j]]) if j < len(okeys) else None
                assert m.higher_item(k) == expected
            elif op == 9:
                lo = None if rng.random() < 0.2 else rng.randrange(6000)
                hi = None if rng.random() < 0.2 else rng.randrange(6000)
                inc = (rng.random() < 0.5, rng.random() < 0.5)
                got = [key for key, _ in m.irange(lo, hi, inclusive=inc)]
                lo_j = 0 if lo is None else (bl(okeys, lo) if inc[0] else br(okeys, lo))
                hi_j = (
                    len(okeys)
                    if hi is None
                    else (br(okeys, hi) if inc[1] else bl(okeys, hi))
                )
                assert got == okeys[lo_j:hi_j]
            elif op == 10 and rng.random() < 0.25:
                inclusive = rng.random() < 0.5
                removed = m.pop_below(k, inclusive=inclusive)
                cut = br(okeys, k) if inclusive else bl(okeys, k)
                assert removed == [(key, model[key]) for key in okeys[:cut]]
                for key in okeys[:cut]:
                    del model[key]
                del okeys[:cut]
            else:
                assert m.get(k, "absent") == model.get(k, "absent")
                assert (k in m) == (k in model)
            assert len(m) == len(model)
            if step % 500 == 499:
                assert list(m.items()) == [(key, model[key]) for key in okeys]
        assert list(m.items()) == [(key, model[key]) for key in okeys]
        if okeys:
            assert m.min_item() == (okeys[0], model[okeys[0]])
            assert m.max_item() == (okeys[-1], model[okeys[-1]])


class TestSetAndHigher:
    def test_insert_returns_successor(self):
        m = SortedMap()
        m[10] = "a"
        m[30] = "c"
        assert m.set_and_higher(20, "b") == (False, (30, "c"))
        assert m[20] == "b"
        assert len(m) == 3

    def test_overwrite_flags_presence(self):
        m = SortedMap()
        m[10] = "a"
        m[20] = "b"
        was_present, nxt = m.set_and_higher(10, "a2")
        assert was_present and nxt == (20, "b")
        assert m[10] == "a2"
        assert len(m) == 2

    def test_no_successor(self):
        m = SortedMap()
        assert m.set_and_higher(5, "x") == (False, None)
        assert m.set_and_higher(9, "y") == (False, None)
        assert list(m.items()) == [(5, "x"), (9, "y")]

    def test_matches_naive_combination(self):
        from random import Random

        rng = Random(42)
        fused, naive = SortedMap(), SortedMap()
        for _ in range(300):
            key = rng.randrange(0, 120)
            expected_present = key in naive
            expected_next = naive.higher_item(key)
            naive[key] = key
            got_present, got_next = fused.set_and_higher(key, key)
            assert got_next == expected_next
            assert got_present == expected_present
        assert list(fused.items()) == list(naive.items())
