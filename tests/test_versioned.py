"""Tests for Aion's timestamp-versioned structures."""

from repro.core.versioned import ExtReadIndex, VersionedFrontier, WriterIntervals


class TestVersionedFrontier:
    def test_latest_at_floor_semantics(self):
        f = VersionedFrontier()
        f.insert("x", 10, "a", 1)
        f.insert("x", 20, "b", 2)
        assert f.latest_at("x", 5) is None
        assert f.latest_at("x", 10) == (10, "a", 1)
        assert f.latest_at("x", 15) == (10, "a", 1)
        assert f.latest_at("x", 99) == (20, "b", 2)

    def test_latest_before_strict(self):
        f = VersionedFrontier()
        f.insert("x", 10, "a", 1)
        assert f.latest_before("x", 10) is None
        assert f.latest_before("x", 11) == (10, "a", 1)

    def test_next_after(self):
        f = VersionedFrontier()
        f.insert("x", 10, "a", 1)
        f.insert("x", 20, "b", 2)
        assert f.next_after("x", 10) == (20, "b", 2)
        assert f.next_after("x", 20) is None
        assert f.next_after("y", 0) is None

    def test_out_of_order_insert(self):
        f = VersionedFrontier()
        f.insert("x", 20, "b", 2)
        f.insert("x", 10, "a", 1)  # arrives late
        assert f.latest_at("x", 15) == (10, "a", 1)
        assert f.next_after("x", 10) == (20, "b", 2)

    def test_evict_keeps_newest_per_key(self):
        f = VersionedFrontier()
        for ts in (10, 20, 30, 40):
            f.insert("x", ts, f"v{ts}", ts)
        segment = f.evict_below(30)
        # 10 and 20 evicted; 30 kept in memory as the newest <= 30.
        assert sorted(cts for cts, _, _ in segment["x"]) == [10, 20]
        assert f.latest_at("x", 35) == (30, "v30", 30)
        assert f.latest_at("x", 99) == (40, "v40", 40)

    def test_evict_then_merge_restores(self):
        f = VersionedFrontier()
        for ts in (10, 20, 30):
            f.insert("x", ts, f"v{ts}", ts)
        segment = f.evict_below(30)
        assert f.latest_at("x", 15) is None  # old floor gone
        f.merge(segment)
        assert f.latest_at("x", 15) == (10, "v10", 10)

    def test_len_counts_versions(self):
        f = VersionedFrontier()
        f.insert("x", 10, "a", 1)
        f.insert("x", 10, "a2", 1)  # overwrite, not a new version
        f.insert("y", 5, "b", 2)
        assert len(f) == 2

    def test_min_retained_ts(self):
        f = VersionedFrontier()
        assert f.min_retained_ts() is None
        f.insert("x", 30, "a", 1)
        f.insert("y", 10, "b", 2)
        assert f.min_retained_ts() == 10


class TestWriterIntervals:
    def test_overlap_excludes_self(self):
        w = WriterIntervals()
        w.add("x", 1, 5, tid=1)
        w.add("x", 4, 9, tid=2)
        hits = w.overlapping("x", 4, 9, exclude_tid=2)
        assert [h.owner for h in hits] == [1]
        assert w.overlapping("x", 1, 5, exclude_tid=1)[0].owner == 2

    def test_keys_are_independent(self):
        w = WriterIntervals()
        w.add("x", 1, 5, tid=1)
        assert w.overlapping("y", 0, 100, exclude_tid=0) == []

    def test_evict_and_merge(self):
        w = WriterIntervals()
        w.add("x", 1, 4, tid=1)
        w.add("x", 10, 14, tid=2)
        segment = w.evict_below(9)
        assert segment == {"x": [(1, 4, 1)]}
        assert len(w) == 1
        w.merge(segment)
        assert len(w) == 2
        assert {h.owner for h in w.overlapping("x", 0, 20, exclude_tid=0)} == {1, 2}


class TestExtReadIndex:
    def test_affected_by_range(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 20, tid=2, actual="b")
        idx.add("x", 30, tid=3, actual="c")
        # New version at ts 15, next version at 25: affects snapshot 20 only.
        hits = list(idx.affected_by("x", 15, 25))
        assert [tid for _, tid, _ in hits] == [2]

    def test_affected_by_unbounded(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 20, tid=2, actual="b")
        hits = list(idx.affected_by("x", 5, None))
        assert [tid for _, tid, _ in hits] == [1, 2]

    def test_upper_inclusive_for_ser(self):
        idx = ExtReadIndex()
        idx.add("x", 25, tid=9, actual="v")
        assert list(idx.affected_by("x", 15, 25)) == []
        assert [t for _, t, _ in idx.affected_by("x", 15, 25, upper_inclusive=True)] == [9]

    def test_remove_and_missing_remove(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.remove("x", 10, tid=1)
        assert len(idx) == 0
        idx.remove("x", 10, tid=1)  # idempotent
        idx.remove("zzz", 1, tid=1)

    def test_shared_snapshot_keeps_all_readers(self):
        """Two readers at one snapshot point must both stay indexed."""
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 10, tid=2, actual="b")
        assert len(idx) == 2
        hits = sorted((t, a) for _, t, a in idx.affected_by("x", 5, None))
        assert hits == [(1, "a"), (2, "b")]

    def test_remove_one_shared_reader_spares_the_other(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 10, tid=2, actual="b")
        idx.remove("x", 10, tid=1)
        assert len(idx) == 1
        assert [t for _, t, _ in idx.affected_by("x", 5, None)] == [2]
        idx.remove("x", 10, tid=2)
        assert len(idx) == 0

    def test_evict_merge_roundtrip(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 50, tid=2, actual="b")
        segment = idx.evict_below(20)
        assert segment == {"x": [(10, 1, "a")]}
        assert len(idx) == 1
        idx.merge(segment)
        assert len(idx) == 2

    def test_evict_flattens_shared_snapshots(self):
        idx = ExtReadIndex()
        idx.add("x", 10, tid=1, actual="a")
        idx.add("x", 10, tid=2, actual="b")
        segment = idx.evict_below(20)
        assert segment == {"x": [(10, 1, "a"), (10, 2, "b")]}
        assert len(idx) == 0
        idx.merge(segment)
        assert len(idx) == 2


class TestInsertAndNext:
    def test_matches_next_after_then_insert(self):
        f = VersionedFrontier()
        f.insert("x", 20, "b", 2)
        assert f.insert_and_next("x", 10, "a", 1) == (20, "b", 2)
        assert f.insert_and_next("x", 30, "c", 3) is None
        assert len(f) == 3
        # Overwrite does not inflate the version count.
        assert f.insert_and_next("x", 10, "a2", 1) == (20, "b", 2)
        assert len(f) == 3
        assert f.latest_at("x", 15) == (10, "a2", 1)
