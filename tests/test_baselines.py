"""Tests for the baseline checkers: Elle, Emme, PolySI, Viper, Cobra."""

import pytest

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.baselines.depgraph import DependencyGraph, VersionOrderError, build_si_split_graph
from repro.baselines.elle import ElleKV, ElleList
from repro.baselines.emme import EmmeSer, EmmeSi, recover_version_order
from repro.baselines.polysi import PolySi
from repro.baselines.solver import AcyclicitySolver, Choice
from repro.baselines.viper import Viper
from repro.core.chronos import Chronos
from repro.core.violations import Axiom
from repro.db.engine import IsolationLevel
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import append, read, read_list, write
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.spec import WorkloadSpec


def small_si_history(seed=31, n=200):
    return generate_default_history(
        WorkloadSpec(
            n_sessions=6, n_transactions=n, ops_per_txn=6, n_keys=80,
            distribution="uniform", seed=seed,
        )
    )


def lost_update_history():
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("x", 1)])
    b.txn(sid=2, start=2, commit=4, ops=[read("x", 0), write("x", 2)])
    return b.build()


def write_skew_history():
    b = HistoryBuilder(keys=["x", "y"])
    b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("y", 1)])
    b.txn(sid=2, start=2, commit=4, ops=[read("y", 0), write("x", 2)])
    return b.build()


class TestSolver:
    def test_fixed_cycle_unsat(self):
        solver = AcyclicitySolver()
        solver.add_fixed_edge("a", "b")
        solver.add_fixed_edge("b", "a")
        assert solver.solve() is None

    def test_no_choices_sat(self):
        solver = AcyclicitySolver()
        solver.add_fixed_edge("a", "b")
        assert solver.solve() == {}

    def test_forced_choice(self):
        solver = AcyclicitySolver()
        solver.add_fixed_edge("a", "b")
        solver.add_choice(Choice("v", if_true=[("b", "a")], if_false=[("a", "c")]))
        assert solver.solve() == {"v": False}

    def test_backtracking_needed(self):
        # v1=True forces a constraint that only v2=False satisfies, etc.
        solver = AcyclicitySolver()
        solver.add_choice(Choice("v1", if_true=[("a", "b")], if_false=[("b", "a")]))
        solver.add_choice(Choice("v2", if_true=[("b", "c")], if_false=[("c", "b")]))
        solver.add_choice(Choice("v3", if_true=[("c", "a")], if_false=[("a", "c")]))
        assignment = solver.solve()
        assert assignment is not None
        # The assignment must avoid the 3-cycle a->b->c->a.
        assert not (assignment["v1"] and assignment["v2"] and assignment["v3"])

    def test_unsat_combination(self):
        solver = AcyclicitySolver()
        solver.add_fixed_edge("a", "b")
        solver.add_fixed_edge("b", "c")
        solver.add_choice(Choice("v", if_true=[("c", "a")], if_false=[("c", "a")]))
        assert solver.solve() is None


class TestDepGraph:
    def test_split_graph_single_rw_cycle_detected(self):
        graph = build_si_split_graph([1, 2], dep_edges=[(1, 2)], rw_edges=[(2, 1)])
        import networkx as nx

        assert not nx.is_directed_acyclic_graph(graph)

    def test_split_graph_pure_rw_cycle_allowed(self):
        graph = build_si_split_graph([1, 2], dep_edges=[], rw_edges=[(1, 2), (2, 1)])
        import networkx as nx

        assert nx.is_directed_acyclic_graph(graph)

    def test_version_order_validation(self):
        history = lost_update_history()
        graph = DependencyGraph(history)
        with pytest.raises(VersionOrderError):
            graph.edges_for_version_order({"x": [1]})  # missing writers

    def test_unjustified_read_reported(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=1, ops=[read("x", 777)])
        graph = DependencyGraph(b.build())
        graph.resolve_reads()
        assert graph.result.by_axiom(Axiom.EXT)

    def test_intermediate_read_reported(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1), write("x", 2)])
        b.txn(sid=2, start=3, commit=3, ops=[read("x", 1)])  # non-final write
        graph = DependencyGraph(b.build())
        graph.resolve_reads()
        assert graph.result.by_axiom(Axiom.EXT)


class TestEmme:
    def test_recover_version_order(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=9, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=2, commit=5, ops=[write("x", 2)])
        order = recover_version_order(b.build())
        assert order["x"] == [0, 2, 1]  # ⊥T, then by commit timestamp

    def test_valid_si_history_accepted(self, si_history):
        assert EmmeSi().check(si_history).is_valid

    def test_fig11_rejected(self, paper_fig11_history):
        assert not EmmeSi().check(paper_fig11_history).is_valid

    def test_fig2_conflict_found(self, paper_fig2_history):
        result = EmmeSi().check(paper_fig2_history)
        assert result.by_axiom(Axiom.NOCONFLICT)

    def test_lost_update_rejected(self):
        assert not EmmeSi().check(lost_update_history()).is_valid

    def test_write_skew_si_legal_ser_illegal(self):
        history = write_skew_history()
        assert EmmeSi().check(history).is_valid
        assert not EmmeSer().check(history).is_valid

    def test_ser_engine_history_accepted_by_emme_ser(self, ser_history):
        assert EmmeSer().check(ser_history).is_valid


class TestElle:
    def test_elle_kv_accepts_valid(self):
        assert ElleKV().check(small_si_history()).is_valid

    def test_elle_kv_black_box_accepts_fig11(self, paper_fig11_history):
        # Elle cannot see timestamps: the stale read is undetectable.
        assert ElleKV().check(paper_fig11_history).is_valid

    def test_elle_kv_detects_wr_so_cycle(self):
        b = HistoryBuilder(keys=["x", "y"])
        # Session 1: T1 writes x, then T3 reads y=2 (from T2).
        # Session 2: T2 reads x=1 (from T1) then writes y.
        # Cycle: T1 -SO-> T3 -?-... build a genuine WR∪SO cycle:
        # T1 -WR-> T2 (T2 reads T1's x), T2 -WR-> T3 (T3 reads T2's y),
        # T3 -SO-> T1 is impossible (SO is forward) so use sessions:
        # put T3 *before* T1 in one session and let T3 read T2's y.
        b.txn(sid=1, tid=3, start=1, commit=2, ops=[read("y", 7)])
        b.txn(sid=1, tid=1, start=3, commit=4, ops=[write("x", 5)])
        b.txn(sid=2, tid=2, start=5, commit=6, ops=[read("x", 5), write("y", 7)])
        result = ElleKV().check(b.build())
        assert not result.is_valid

    def test_elle_list_accepts_valid(self, list_history):
        assert ElleList().check(list_history).is_valid

    def test_elle_list_detects_nonprefix_reads(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[append("l", 2)])
        b.txn(sid=3, start=5, commit=5, ops=[read_list("l", [1, 2])])
        b.txn(sid=4, start=6, commit=6, ops=[read_list("l", [2])])  # not a prefix
        assert not ElleList().check(b.build()).is_valid

    def test_elle_list_detects_unknown_element(self):
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=2, ops=[append("l", 1)])
        b.txn(sid=2, start=3, commit=3, ops=[read_list("l", [1, 99])])
        assert not ElleList().check(b.build()).is_valid

    def test_elle_list_ser_mode_flags_rw_cycle(self):
        # Two sessions each read the other's key before the append lands:
        # classic write-skew-ish 2-RW cycle — legal SI, illegal SER.
        b = HistoryBuilder(with_init=False)
        b.txn(sid=1, start=1, commit=3, ops=[read_list("k2", []), append("k1", 1)])
        b.txn(sid=2, start=2, commit=4, ops=[read_list("k1", []), append("k2", 2)])
        history = b.build()
        assert ElleList(mode="si").check(history).is_valid
        assert not ElleList(mode="ser").check(history).is_valid

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ElleList(mode="other")


class TestPolySiViper:
    @pytest.fixture(scope="class")
    def valid_history(self):
        return small_si_history(seed=32, n=120)

    def test_polysi_accepts_valid(self, valid_history):
        assert PolySi().check(valid_history).is_valid

    def test_viper_accepts_valid(self, valid_history):
        assert Viper().check(valid_history).is_valid

    def test_both_accept_fig11(self, paper_fig11_history):
        assert PolySi().check(paper_fig11_history).is_valid
        assert Viper().check(paper_fig11_history).is_valid

    def test_both_reject_lost_update(self):
        history = lost_update_history()
        assert not PolySi().check(history).is_valid
        assert not Viper().check(history).is_valid

    def test_both_accept_write_skew(self):
        history = write_skew_history()
        assert PolySi().check(history).is_valid
        assert Viper().check(history).is_valid

    def test_choice_counts_reported(self, valid_history):
        checker = PolySi()
        checker.check(valid_history)
        assert checker.n_choices > 0
        assert checker.solve_seconds >= 0


class TestCobra:
    def _stream(self, history):
        return history.by_commit_ts()

    def test_accepts_ser_history(self, ser_history):
        cobra = CobraChecker(CobraConfig(fence_every=20, round_size=300))
        for txn in self._stream(ser_history):
            cobra.receive(txn)
        assert cobra.finalize().is_valid
        assert cobra.rounds_checked >= 3

    def test_stops_at_first_violation(self, si_history):
        cobra = CobraChecker(CobraConfig(fence_every=20, round_size=200))
        processed = 0
        for txn in self._stream(si_history):
            cobra.receive(txn)
            processed += 1
            if cobra.stopped:
                break
        assert cobra.stopped
        assert processed < len(si_history)
        assert not cobra.result.is_valid
        # Further input is ignored after the stop.
        cobra.receive(self._stream(si_history)[0])
        assert len(cobra.result.violations) == 1

    def test_cross_round_reads_resolve_via_frontier(self, ser_history):
        cobra = CobraChecker(CobraConfig(fence_every=10, round_size=50))
        for txn in self._stream(ser_history):
            cobra.receive(txn)
        assert cobra.finalize().is_valid

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CobraConfig(fence_every=0)
        with pytest.raises(ValueError):
            CobraConfig(round_size=0)


class TestCrossCheckerAgreement:
    """All SI checkers agree on engine histories and canonical anomalies."""

    def test_all_accept_engine_si_history(self):
        history = small_si_history(seed=33, n=100)
        for checker in (Chronos(), EmmeSi(), ElleKV(), PolySi(), Viper()):
            assert checker.check(history).is_valid, type(checker).__name__

    def test_timestamp_checkers_reject_skewed(self):
        from repro.db.faults import SkewedOracle
        from repro.db.oracle import CentralizedOracle

        oracle = SkewedOracle(CentralizedOracle(), probability=0.1, max_skew=100)
        history = generate_default_history(
            WorkloadSpec(n_sessions=6, n_transactions=400, ops_per_txn=8,
                         n_keys=50, seed=34),
            oracle=oracle,
        )
        assert not Chronos().check(history).is_valid
        assert not EmmeSi().check(history).is_valid

    def test_chronos_elle_agree_on_lists(self):
        history = generate_list_history(
            WorkloadSpec(n_sessions=5, n_transactions=300, ops_per_txn=6, n_keys=30, seed=35)
        )
        assert Chronos().check(history).is_valid
        assert ElleList().check(history).is_valid
