"""Tests for the Operation / Transaction / History data model."""

import pytest

from repro.histories.model import (
    INIT_TID,
    History,
    Operation,
    OpKind,
    Transaction,
)
from repro.histories.ops import append, read, read_list, write


def _txn(tid=1, sid=1, sno=0, ops=(), start=1, commit=2):
    return Transaction(tid=tid, sid=sid, sno=sno, ops=ops, start_ts=start, commit_ts=commit)


class TestOperation:
    def test_repr_notation(self):
        assert repr(read("x", 1)) == "R(x, 1)"
        assert repr(write("x", 1)) == "W(x, 1)"
        assert repr(append("l", 3)) == "A(l, 3)"
        assert repr(read_list("l", [1, 2])) == "RL(l, (1, 2))"

    def test_read_list_coerces_tuple(self):
        op = Operation(OpKind.READ_LIST, "l", [1, 2, 3])
        assert op.value == (1, 2, 3)

    def test_predicates(self):
        assert read("x", 1).is_read and not read("x", 1).is_write
        assert write("x", 1).is_write and not write("x", 1).is_read
        assert append("l", 1).is_write
        assert read_list("l", []).is_read

    def test_equality_and_hash(self):
        assert read("x", 1) == read("x", 1)
        assert read("x", 1) != write("x", 1)
        assert len({read("x", 1), read("x", 1), write("x", 1)}) == 2


class TestTransactionDerivedViews:
    def test_write_keys_and_last_writes(self):
        txn = _txn(ops=[write("a", 1), write("b", 2), write("a", 3)])
        assert txn.write_keys == {"a", "b"}
        assert txn.last_writes == {"a": 3, "b": 2}

    def test_external_reads_first_op_per_key(self):
        txn = _txn(ops=[read("a", 1), read("a", 2), write("b", 1), read("b", 1)])
        assert set(txn.external_reads) == {"a"}
        assert txn.external_reads["a"].value == 1  # first read, not second

    def test_read_after_write_is_internal(self):
        txn = _txn(ops=[write("a", 1), read("a", 1)])
        assert "a" not in txn.external_reads

    def test_read_only(self):
        assert _txn(ops=[read("a", 1)]).is_read_only
        assert not _txn(ops=[append("a", 1)]).is_read_only

    def test_overlaps(self):
        a = _txn(tid=1, start=1, commit=5)
        b = _txn(tid=2, start=5, commit=9)
        c = _txn(tid=3, start=6, commit=7)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_identity_by_tid(self):
        assert _txn(tid=7) == _txn(tid=7, ops=[write("z", 1)], start=9, commit=10)
        assert _txn(tid=7) != _txn(tid=8)


class TestHistory:
    def test_duplicate_tid_rejected(self):
        with pytest.raises(ValueError):
            History([_txn(tid=1), _txn(tid=1, start=3, commit=4)])

    def test_sessions_grouped_and_sorted(self):
        txns = [
            _txn(tid=1, sid=1, sno=1, start=3, commit=4),
            _txn(tid=2, sid=1, sno=0, start=1, commit=2),
            _txn(tid=3, sid=2, sno=0, start=5, commit=6),
        ]
        history = History(txns)
        assert [t.tid for t in history.sessions[1]] == [2, 1]
        assert [t.tid for t in history.sessions[2]] == [3]

    def test_by_commit_ts(self):
        txns = [_txn(tid=1, start=1, commit=9), _txn(tid=2, start=2, commit=3)]
        assert [t.tid for t in History(txns).by_commit_ts()] == [2, 1]

    def test_events_order_and_phase(self):
        txn = _txn(tid=1, start=5, commit=5)  # read-only, equal timestamps
        events = History([txn]).events()
        assert [(ts, phase) for ts, phase, _ in events] == [(5, 0), (5, 1)]

    def test_events_interleaving(self):
        txns = [_txn(tid=1, start=1, commit=4), _txn(tid=2, start=2, commit=3)]
        events = History(txns).events()
        assert [(e[0], e[1], e[2].tid) for e in events] == [
            (1, 0, 1),
            (2, 0, 2),
            (3, 1, 2),
            (4, 1, 1),
        ]

    def test_keys_and_op_count(self):
        history = History([_txn(ops=[write("a", 1), read("b", 0)])])
        assert history.keys() == {"a", "b"}
        assert history.op_count() == 2

    def test_init_transaction_lookup(self):
        init = Transaction(INIT_TID, 0, 0, [write("a", 0)], 0, 0)
        history = History([init, _txn(tid=1)])
        assert history.init_transaction is init
        assert [t.tid for t in history.without_init()] == [1]

    def test_subset(self):
        history = History([_txn(tid=1), _txn(tid=2, start=3, commit=4)])
        assert len(history.subset(1)) == 1

    def test_get_and_contains(self):
        history = History([_txn(tid=9)])
        assert history.get(9).tid == 9
        assert 9 in history and 10 not in history
        with pytest.raises(KeyError):
            history.get(10)
