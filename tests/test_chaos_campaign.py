"""Chaos harness units plus a small end-to-end campaign smoke.

Covers the pieces the campaign runner stands on — the WAL tailer
(torn-line handling, offset resume), the stream-level fault injector,
the writable skew probability, connect backoff with attempt counting,
and schedule generation/serialization — then runs one small seeded
campaign end to end and asserts its report gate.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.chaos import CampaignRunner, CampaignSchedule, FaultEvent
from repro.db.cdc import WalTailer
from repro.db.faults import LiveFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle
from repro.histories.model import Operation, OpKind, Transaction
from repro.histories.serialization import txn_to_dict
from repro.service import CheckerClient, ServiceError


# ----------------------------------------------------------------------
# WalTailer
# ----------------------------------------------------------------------

def commit_line(tid: int) -> str:
    txn = Transaction(
        tid=tid,
        sid=0,
        sno=tid,
        ops=(Operation(OpKind.WRITE, "x", tid),),
        start_ts=2 * tid + 1,
        commit_ts=2 * tid + 2,
    )
    return "COMMIT " + json.dumps(txn_to_dict(txn), separators=(",", ":"))


class TestWalTailer:
    def test_missing_file_reads_as_empty(self, tmp_path):
        tailer = WalTailer(tmp_path / "absent.wal")
        assert tailer.poll() == []
        assert tailer.offset == 0

    def test_incremental_polls_see_each_append_once(self, tmp_path):
        path = tmp_path / "live.wal"
        tailer = WalTailer(path)
        with path.open("a") as handle:
            handle.write(commit_line(1) + "\n")
        assert [txn.tid for txn in tailer.poll()] == [1]
        with path.open("a") as handle:
            handle.write(commit_line(2) + "\n" + commit_line(3) + "\n")
        assert [txn.tid for txn in tailer.poll()] == [2, 3]
        assert tailer.poll() == []

    def test_torn_tail_is_left_for_the_next_poll(self, tmp_path):
        path = tmp_path / "torn.wal"
        line = commit_line(7) + "\n"
        with path.open("a") as handle:
            handle.write(commit_line(5) + "\n")
            handle.write(line[: len(line) // 2])  # writer mid-append
        tailer = WalTailer(path)
        assert [txn.tid for txn in tailer.poll()] == [5]
        offset_after_first = tailer.offset
        assert tailer.poll() == []  # torn tail: not consumed, not yielded
        assert tailer.offset == offset_after_first
        with path.open("a") as handle:
            handle.write(line[len(line) // 2 :])
        assert [txn.tid for txn in tailer.poll()] == [7]

    def test_offset_round_trips_across_tailers(self, tmp_path):
        path = tmp_path / "resume.wal"
        with path.open("a") as handle:
            handle.write(commit_line(1) + "\n" + commit_line(2) + "\n")
        first = WalTailer(path)
        assert len(first.poll()) == 2
        with path.open("a") as handle:
            handle.write(commit_line(3) + "\n")
        resumed = WalTailer(path, offset=first.offset)
        assert [txn.tid for txn in resumed.poll()] == [3]

    def test_non_commit_lines_are_skipped(self, tmp_path):
        path = tmp_path / "mixed.wal"
        with path.open("a") as handle:
            handle.write("CHECKPOINT 12\n")
            handle.write(commit_line(4) + "\n")
            handle.write("\n")
        assert [txn.tid for txn in WalTailer(path).poll()] == [4]


# ----------------------------------------------------------------------
# Stream-level fault injection
# ----------------------------------------------------------------------

def make_batch(n: int = 8, base_tid: int = 1):
    txns = []
    for index in range(n):
        tid = base_tid + index
        txns.append(
            Transaction(
                tid=tid,
                sid=index % 2,
                sno=index // 2 + 1,
                ops=(
                    Operation(OpKind.READ, "a", None),
                    Operation(OpKind.WRITE, f"k{index % 3}", tid),
                ),
                start_ts=10 * tid,
                commit_ts=10 * tid + 5,
            )
        )
    return txns


class TestLiveFaultInjector:
    @pytest.mark.parametrize("kind", LiveFaultInjector.CLASSES)
    def test_each_class_mutates_and_labels(self, kind):
        injector = LiveFaultInjector(seed=3)
        if kind == "noconflict":
            # Needs an established last-writer map from a prior batch.
            injector.observe(make_batch(8, base_tid=1))
            batch = make_batch(8, base_tid=100)
        else:
            batch = make_batch(8)
        pristine = [txn_to_dict(txn) for txn in batch]
        label = injector.inject(kind, batch)
        assert label is not None, f"{kind} found no target in a writable batch"
        assert label.axiom.value == kind.upper()
        assert label.tids
        assert [txn_to_dict(txn) for txn in batch] != pristine
        assert injector.labels[-1] is label

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            LiveFaultInjector().inject("gibberish", make_batch())

    def test_empty_batch_skips_cleanly(self):
        assert LiveFaultInjector().inject("ext", []) is None


class TestSkewedOracleProbability:
    def test_probability_is_writable_between_windows(self):
        oracle = SkewedOracle(CentralizedOracle(), probability=0.0)
        for _ in range(50):
            oracle.next_ts()
        assert oracle.n_skewed == 0
        oracle.probability = 1.0
        for _ in range(50):
            oracle.next_ts()
        assert oracle.n_skewed > 0

    def test_probability_validates_range(self):
        oracle = SkewedOracle(CentralizedOracle())
        with pytest.raises(ValueError):
            oracle.probability = 1.5
        with pytest.raises(ValueError):
            oracle.probability = -0.1


# ----------------------------------------------------------------------
# Connect backoff
# ----------------------------------------------------------------------

def dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestConnectBackoff:
    def test_single_attempt_raises_the_original_error(self):
        client = CheckerClient("127.0.0.1", dead_port())
        with pytest.raises(ConnectionRefusedError):
            client.connect()

    def test_exhausted_retries_raise_service_error_with_attempts(self):
        client = CheckerClient("127.0.0.1", dead_port())
        started = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.connect(retry_for=0.3)
        elapsed = time.monotonic() - started
        assert excinfo.value.attempts >= 2
        assert str(excinfo.value.attempts) in str(excinfo.value)
        # Capped backoff honours the deadline, with one jittered sleep
        # of grace at most.
        assert elapsed < 2.0

    def test_auto_resume_requires_v2(self):
        with pytest.raises(ValueError):
            CheckerClient("127.0.0.1", 1, protocol=1, auto_resume=True)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------

class TestCampaignSchedule:
    def test_generate_is_deterministic(self):
        first = CampaignSchedule.generate(99)
        second = CampaignSchedule.generate(99)
        assert first.to_dict() == second.to_dict()
        assert first.to_dict() != CampaignSchedule.generate(100).to_dict()

    def test_round_trips_through_json(self):
        schedule = CampaignSchedule.generate(7, segments=6)
        wire = json.loads(json.dumps(schedule.to_dict()))
        assert CampaignSchedule.from_dict(wire).to_dict() == schedule.to_dict()

    def test_generate_respects_counts(self):
        schedule = CampaignSchedule.generate(
            3, segments=10, kills=4, restarts=2, pauses=1, skew_bursts=2, mutations=5
        )
        counts = schedule.counts()
        assert counts == {
            "kill": 4, "restart": 2, "pause": 1, "skew_burst": 2, "mutate": 5
        }
        restart_segments = [
            event.segment for event in schedule.events if event.kind == "restart"
        ]
        assert 0 not in restart_segments
        assert len(set(restart_segments)) == len(restart_segments)

    def test_events_for_applies_in_kind_order(self):
        schedule = CampaignSchedule(
            segments=2,
            events=[
                FaultEvent(1, "kill", 0),
                FaultEvent(1, "restart"),
                FaultEvent(1, "mutate", "ext"),
            ],
        )
        assert [event.kind for event in schedule.events_for(1)] == [
            "restart", "mutate", "kill"
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0, "meteor-strike")
        with pytest.raises(ValueError):
            FaultEvent(1, "mutate", "not-a-class")
        with pytest.raises(ValueError):
            CampaignSchedule(segments=2, events=[FaultEvent(5, "kill")])
        with pytest.raises(ValueError):
            CampaignSchedule.generate(0, segments=3, restarts=3)


# ----------------------------------------------------------------------
# End-to-end smoke
# ----------------------------------------------------------------------

class TestCampaignSmoke:
    def test_small_campaign_passes_its_gate(self):
        schedule = CampaignSchedule.generate(
            7, segments=6, kills=2, restarts=1, pauses=1, skew_bursts=1, mutations=3
        )
        report = CampaignRunner(
            schedule, txns_per_segment=30, pause_ms=2.0
        ).run()
        assert report.ok, report.summary()
        assert report.restarts_completed == 1
        assert report.kills_armed == 2
        assert report.reconnects >= 3
        assert report.labels_detected == len(report.labels) == 3
        assert report.bursts_detected == len(report.bursts) == 1
        assert report.false_positives == []
        assert report.reference_match
        # The report serializes (the CLI's --json/--report path).
        wire = json.loads(json.dumps(report.to_dict(), sort_keys=True))
        assert wire["ok"] is True
        assert "PASS" in report.summary()
