"""GC min-heap churn tests: heap-driven eviction ≡ full-walk oracle.

PR 6 replaced ``evict_below``'s full walk over every key with a lazy
min-heap of ``(commit_ts, key)`` entries — one pushed per new version or
interval — so a GC cycle costs the keys that actually hold evictable
state.  The laziness has sharp edges these tests pin against naive
models that re-scan everything:

- a key's *kept newest* evictable version gets no fresh heap entry, and
  must still be evicted once a newer version's entry pops in a later
  cycle;
- duplicate and stale heap entries (replaced versions, already-evicted
  keys) must be harmless;
- after ``evict_below(ts)`` no remaining frontier entry may be ≤ ts and
  no interval entry < ts (no stale minima — the early-return guard
  depends on it);
- reload-on-demand re-inserts *below* the collected boundary, and the
  re-pushed entries must make the next cycle evict them again.
"""

from random import Random

import pytest

from repro.core.aion import Aion, AionConfig
from repro.core.versioned import VersionedFrontier, WriterIntervals

from test_differential import session_respecting_shuffle, small_history


class FrontierOracle:
    """Full-walk model of :meth:`VersionedFrontier.evict_below`:
    among each key's versions with ``commit_ts <= ts``, keep the newest,
    evict the rest."""

    def __init__(self):
        self.by_key = {}

    def insert(self, key, commit_ts, value, tid):
        self.by_key.setdefault(key, {})[commit_ts] = (value, tid)

    def evict_below(self, ts):
        evicted = {}
        for key, versions in self.by_key.items():
            below = sorted(cts for cts in versions if cts <= ts)
            if len(below) < 2:
                continue
            evicted[key] = [
                (cts, versions[cts][0], versions[cts][1]) for cts in below[:-1]
            ]
            for cts in below[:-1]:
                del versions[cts]
        return evicted

    def versions_of(self, key):
        return sorted(self.by_key.get(key, {}).items())


class WriterOracle:
    """Full-walk model of :meth:`WriterIntervals.evict_below`:
    evict every interval with ``end < ts`` (duplicates included)."""

    def __init__(self):
        self.by_key = {}

    def add(self, key, start_ts, commit_ts, tid):
        self.by_key.setdefault(key, []).append((start_ts, commit_ts, tid))

    def evict_below(self, ts):
        evicted = {}
        for key, intervals in self.by_key.items():
            gone = [iv for iv in intervals if iv[1] < ts]
            if gone:
                evicted[key] = gone
                self.by_key[key] = [iv for iv in intervals if iv[1] >= ts]
        return evicted


def normalized(evicted):
    return {key: sorted(items) for key, items in evicted.items() if items}


def assert_frontier_heap_invariant(frontier, ts):
    assert all(entry[0] > ts for entry in frontier._gc_heap), (
        f"stale frontier heap minima at or below {ts}"
    )


def assert_writers_heap_invariant(writers, ts):
    assert all(entry[0] >= ts for entry in writers._gc_heap), (
        f"stale interval heap minima below {ts}"
    )


@pytest.mark.parametrize("seed", [0, 1, 7, 99])
def test_frontier_evict_matches_full_walk_under_churn(seed):
    rng = Random(seed)
    frontier = VersionedFrontier()
    oracle = FrontierOracle()
    keys = [f"k{i}" for i in range(12)]
    watermark = 0
    next_tid = 1
    for step in range(600):
        if rng.random() < 0.15:
            # Mostly-monotone watermark, occasionally re-requesting an
            # old one (which must be a cheap no-op, not a corruption).
            watermark = max(watermark, rng.randint(0, step * 4)) if rng.random() < 0.8 else watermark
            got = normalized(frontier.evict_below(watermark))
            want = normalized(oracle.evict_below(watermark))
            assert got == want, f"step {step} ts {watermark}"
            assert_frontier_heap_invariant(frontier, watermark)
        else:
            key = rng.choice(keys)
            cts = rng.randint(0, step * 4 + 4)
            value = rng.randint(0, 5)
            frontier.insert(key, cts, value, next_tid)
            oracle.insert(key, cts, value, next_tid)
            next_tid += 1
    # Drain: a final high watermark must leave exactly one version per key.
    final = max(watermark, 600 * 4) + 1
    assert normalized(frontier.evict_below(final)) == normalized(
        oracle.evict_below(final)
    )
    assert_frontier_heap_invariant(frontier, final)
    for key in keys:
        if key in oracle.by_key and oracle.by_key[key]:
            assert len(oracle.by_key[key]) == 1


@pytest.mark.parametrize("seed", [0, 3, 42, 1213])
def test_writer_intervals_evict_matches_full_walk_under_churn(seed):
    rng = Random(seed)
    writers = WriterIntervals()
    oracle = WriterOracle()
    keys = [f"k{i}" for i in range(8)]
    watermark = 0
    next_tid = 1
    for step in range(600):
        if rng.random() < 0.15:
            watermark = max(watermark, rng.randint(0, step * 4))
            got = normalized(writers.evict_below(watermark))
            want = normalized(oracle.evict_below(watermark))
            assert got == want, f"step {step} ts {watermark}"
            assert_writers_heap_invariant(writers, watermark)
        else:
            key = rng.choice(keys)
            end = rng.randint(0, step * 4 + 4)
            start = max(0, end - rng.randint(0, 20))
            if rng.random() < 0.5:
                writers.add(key, start, end, next_tid)
            else:
                writers.overlap_add(key, start, end, next_tid)
            oracle.add(key, start, end, next_tid)
            next_tid += 1
    final = max(watermark, 600 * 4) + 1
    assert normalized(writers.evict_below(final)) == normalized(
        oracle.evict_below(final)
    )
    assert_writers_heap_invariant(writers, final)
    assert len(writers) == sum(len(ivs) for ivs in oracle.by_key.values())


def test_kept_newest_version_is_recovered_by_later_entries():
    """The retained newest-evictable version gets no fresh heap entry;
    a later version's entry must re-cover it."""
    frontier = VersionedFrontier()
    frontier.insert("k", 1, "a", 1)
    frontier.insert("k", 2, "b", 2)
    assert frontier.evict_below(10) == {"k": [(1, "a", 1)]}
    # Version 2 survives as the visible floor, with no heap entry left.
    assert frontier.value_at("k", 10) == "b"
    assert frontier.evict_below(10) == {}  # cheap no-op, nothing stale
    frontier.insert("k", 12, "c", 3)
    # 12's entry pops and re-covers the key: 2 is no longer the newest
    # evictable version, so it must leave now.
    assert frontier.evict_below(15) == {"k": [(2, "b", 2)]}
    assert frontier.value_at("k", 20) == "c"
    assert_frontier_heap_invariant(frontier, 15)


def test_reload_reinserts_repush_heap_entries():
    """Merging spilled state back (reload-on-demand) must make those
    versions evictable again in the next cycle."""
    frontier = VersionedFrontier()
    for cts in (1, 2, 3):
        frontier.insert("k", cts, f"v{cts}", cts)
    evicted = frontier.evict_below(100)
    assert evicted == {"k": [(1, "v1", 1), (2, "v2", 2)]}
    frontier.merge(evicted)
    assert normalized(frontier.evict_below(100)) == normalized(evicted)
    assert_frontier_heap_invariant(frontier, 100)

    writers = WriterIntervals()
    for end in (5, 6, 7):
        writers.add("k", 0, end, end)
    evicted = writers.evict_below(100)
    assert normalized(evicted) == {"k": [(0, 5, 5), (0, 6, 6), (0, 7, 7)]}
    writers.merge(evicted)
    assert normalized(writers.evict_below(100)) == normalized(evicted)
    assert_writers_heap_invariant(writers, 100)


def test_duplicate_and_replaced_versions_are_harmless():
    """Replacing a version's payload pushes a duplicate heap entry for
    the same (commit_ts, key); eviction must count the version once."""
    frontier = VersionedFrontier()
    for _ in range(5):
        frontier.insert("k", 3, "x", 9)  # same version, re-inserted
    frontier.insert("k", 8, "y", 10)
    assert len(frontier) == 2
    assert frontier.evict_below(50) == {"k": [(3, "x", 9)]}
    assert len(frontier) == 1
    assert frontier.evict_below(50) == {}
    assert_frontier_heap_invariant(frontier, 50)


def test_aion_gc_cycles_keep_heap_invariants():
    """End-to-end sawtooth: batched kernel ingestion with periodic GC
    leaves no stale heap minima and keeps repeat collections no-ops."""
    history = small_history(21, n=150)
    arrival = session_respecting_shuffle(history, Random(21))
    checker = Aion(AionConfig(timeout=float("inf")), clock=lambda: 0.0)
    try:
        for offset in range(0, len(arrival), 30):
            checker.receive_many(arrival[offset : offset + 30])
            report = checker.collect_below(None)
            boundary = report.effective_ts
            assert_frontier_heap_invariant(checker._frontier, boundary)
            assert_writers_heap_invariant(checker._writers, boundary)
            again = checker.collect_below(boundary)
            assert again.evicted_versions == 0
            assert again.evicted_intervals == 0
    finally:
        checker.close()
