"""Tests for Aion-SER, the online serializability checker."""

from repro.core.aion_ser import AionSer
from repro.core.aion import AionConfig
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import normalize_violations
from repro.core.violations import Axiom
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write
from repro.online.clock import SimClock


def make_ser(timeout=float("inf"), clock=None):
    return AionSer(AionConfig(timeout=timeout), clock=clock or (lambda: 0.0))


def feed(checker, txns):
    for txn in txns:
        checker.receive(txn)
    return checker.finalize()


class TestCommitOrderSemantics:
    def test_serial_history_valid(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[read("x", 1), write("x", 2)])
        history = b.build()
        assert feed(make_ser(), history.transactions).is_valid

    def test_reader_sees_strict_predecessor(self):
        # A reader committing at ts c must see the version just below c,
        # never its own or later versions.
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        b.txn(sid=2, start=3, commit=4, ops=[read("x", 1), write("x", 2)])
        b.txn(sid=3, start=5, commit=6, ops=[read("x", 2)])
        history = b.build()
        assert feed(make_ser(), history.transactions).is_valid

    def test_stale_read_flagged(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, tid=1, start=1, commit=4, ops=[write("x", 1)])
        b.txn(sid=2, tid=2, start=2, commit=5, ops=[read("x", 0)])
        history = b.build()
        result = feed(make_ser(), history.transactions)
        ext = result.by_axiom(Axiom.EXT)
        assert len(ext) == 1 and ext[0].tid == 2


class TestOutOfOrder:
    def test_late_serial_predecessor_rechecks_readers(self):
        b = HistoryBuilder(keys=["x"])
        w1 = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        r = b.txn(sid=2, start=3, commit=4, ops=[read("x", 1)])
        history = b.build()
        checker = make_ser()
        result = feed(checker, [history.init_transaction, r, w1])
        assert result.is_valid
        assert checker.flipflop_stats.flipped_tids == {r.tid}

    def test_late_writer_invalidates_reader(self):
        b = HistoryBuilder(keys=["x"])
        w1 = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        r = b.txn(sid=2, start=3, commit=4, ops=[read("x", 0)])  # misses w1
        history = b.build()
        result = feed(make_ser(), [history.init_transaction, r, w1])
        assert result.by_axiom(Axiom.EXT)

    def test_writer_reading_key_it_overwrites(self):
        # The upper-inclusive re-check boundary: a txn that reads x and
        # writes x sees the version strictly before its own commit.
        b = HistoryBuilder(keys=["x"])
        w1 = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
        rw = b.txn(sid=2, start=3, commit=4, ops=[read("x", 1), write("x", 2)])
        history = b.build()
        result = feed(make_ser(), [history.init_transaction, rw, w1])
        assert result.is_valid


class TestSessionsAndTimeouts:
    def test_session_commit_order(self):
        b = HistoryBuilder(keys=["x"])
        b.txn(sid=1, sno=0, start=5, commit=6, ops=[write("x", 1)])
        b.txn(sid=1, sno=1, start=1, commit=2, ops=[write("y", 1)])
        history = b.build()
        result = feed(make_ser(), history.transactions)
        assert result.by_axiom(Axiom.SESSION)

    def test_timeout_finalizes(self):
        clock = SimClock()
        checker = make_ser(timeout=1.0, clock=clock)
        b = HistoryBuilder(keys=["x"])
        bad = b.txn(sid=1, start=1, commit=1, ops=[read("x", 99)])
        history = b.build()
        checker.receive(history.init_transaction)
        checker.receive(bad)
        clock.advance(1.5)
        assert [v.axiom for v in checker.poll()] == [Axiom.EXT]

    def test_matches_chronos_ser_on_si_history(self, si_history):
        checker = make_ser()
        result = feed(checker, si_history.by_commit_ts())
        offline = ChronosSer().check(si_history)
        assert normalize_violations(result) == normalize_violations(offline)
        assert not result.is_valid  # SI history is not serializable here
