"""Differential tests: the staged batch kernel ≡ per-op dispatch.

``receive_many`` was rebuilt (PR 6) as a three-pass kernel — route the
batch into flat op arrays, probe the versioned structures, apply the
verdicts in arrival order — while ``receive`` keeps the original
per-transaction dispatch as the reference implementation.  These tests
pin the refactor's whole claim: for any history (clean, fault-injected,
or a textbook anomaly), any session-respecting arrival order, and any
batch partition of that order — including single-transaction batches and
batches straddling GC cycles — both paths yield the identical violation
multiset.  The kernel's per-stage counters are pinned too: they advance
deterministically with the routed work and never on the per-op path,
which is what lets the benchmark smoke gate catch a silent regression
back to per-op dispatch.
"""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.reference import normalize_violations
from repro.core.sharded import ShardedAion
from repro.histories.anomalies import ANOMALY_CATALOG

from test_differential import session_respecting_shuffle, small_history

INF = AionConfig(timeout=float("inf"))


def make_checker(kind):
    if kind == "aion":
        return Aion(INF, clock=lambda: 0.0)
    if kind == "aion-ablation":
        return Aion(
            AionConfig(timeout=float("inf"), optimized_recheck=False),
            clock=lambda: 0.0,
        )
    if kind == "ser":
        return AionSer(INF, clock=lambda: 0.0)
    assert kind == "sharded"
    return ShardedAion(INF, n_shards=3, clock=lambda: 0.0)


def per_op_verdicts(kind, txns, *, gc_every=None):
    """Reference: one transaction at a time through ``receive``.

    ShardedAion routes ``receive`` through the kernel as a batch of one,
    so its reference is single-shard per-op Aion instead.
    """
    checker = make_checker("aion" if kind == "sharded" else kind)
    for index, txn in enumerate(txns):
        checker.receive(txn)
        if gc_every is not None and index % gc_every == gc_every - 1:
            checker.collect_below(None)
    try:
        return normalize_violations(checker.finalize()), checker.processed
    finally:
        checker.close()


def kernel_verdicts(kind, txns, *, batch_size, gc_every=None):
    """Same arrival order, partitioned into ``batch_size`` batches.

    ``gc_every`` counts *transactions*, matching :func:`per_op_verdicts`
    boundaries whenever ``gc_every % batch_size == 0``.
    """
    checker = make_checker(kind)
    try:
        done = 0
        for offset in range(0, len(txns), batch_size):
            checker.receive_many(txns[offset : offset + batch_size])
            done = offset + batch_size
            if gc_every is not None and done % gc_every == 0:
                checker.collect_below(None)
        return normalize_violations(checker.finalize()), checker.processed
    finally:
        checker.close()


KINDS = ["aion", "aion-ablation", "ser", "sharded"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("name", sorted(ANOMALY_CATALOG))
def test_kernel_matches_per_op_on_anomaly_catalog(kind, name):
    """Every textbook anomaly, every arrival order of its tiny history,
    every batch split: kernel ≡ per-op."""
    history = ANOMALY_CATALOG[name].build()
    for shuffle_seed in range(4):
        arrival = session_respecting_shuffle(history, Random(shuffle_seed))
        expected = per_op_verdicts(kind, arrival)
        for batch_size in (1, 2, len(arrival)):
            got = kernel_verdicts(kind, arrival, batch_size=batch_size)
            assert got == expected, (name, shuffle_seed, batch_size)


@pytest.mark.parametrize("kind", KINDS)
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shuffle_seed=st.integers(0, 10_000),
    faults=st.integers(0, 6),
    batch_size=st.sampled_from([1, 3, 17, 500]),
)
def test_kernel_matches_per_op_property(kind, seed, shuffle_seed, faults, batch_size):
    history = small_history(seed, faults=faults)
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    expected = per_op_verdicts(kind, arrival)
    got = kernel_verdicts(kind, arrival, batch_size=batch_size)
    assert got == expected


@pytest.mark.parametrize("kind", KINDS)
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shuffle_seed=st.integers(0, 10_000),
    batch_size=st.sampled_from([5, 20]),
    cycles=st.integers(1, 4),
)
def test_kernel_matches_per_op_straddling_gc(kind, seed, shuffle_seed, batch_size, cycles):
    """Batches arriving after GC cycles must reload spilled state exactly
    like the per-op path: later batches contain transactions whose
    snapshots lie below the collected boundary."""
    gc_every = batch_size * cycles
    history = small_history(seed)
    arrival = session_respecting_shuffle(history, Random(shuffle_seed))
    expected = per_op_verdicts(kind, arrival, gc_every=gc_every)
    got = kernel_verdicts(kind, arrival, batch_size=batch_size, gc_every=gc_every)
    assert got == expected


@pytest.mark.parametrize("kind", KINDS)
def test_kernel_counters_deterministic(kind):
    """Counters advance with the routed work — exact values derivable
    from the history alone, independent of wall-clock."""
    history = small_history(7, n=60)
    arrival = session_respecting_shuffle(history, Random(7))
    checker = make_checker(kind)
    try:
        for offset in range(0, len(arrival), 25):
            checker.receive_many(arrival[offset : offset + 25])
        stats = checker.kernel_stats
        n = len(arrival)  # the workload's txns plus the init transaction
        assert stats.batches == -(-n // 25)
        assert stats.txns == n
        assert stats.max_batch == 25
        assert stats.route_ops == sum(len(t.ops) for t in arrival)
        n_ext_reads = sum(len(t.external_reads) for t in arrival)
        assert stats.probe_reads == n_ext_reads
        assert stats.verdict_tracks == n_ext_reads
        n_writes = sum(
            len({op.key for op in t.ops if op.kind.name == "WRITE"}) for t in arrival
        )
        assert stats.probe_writes == n_writes
        as_dict = stats.as_dict()
        assert as_dict["batches"] == stats.batches
        assert set(as_dict) == {
            "batches",
            "txns",
            "max_batch",
            "route_ops",
            "probe_reads",
            "probe_writes",
            "verdict_tracks",
            "verdict_reevals",
            "verdict_conflicts",
            "timed_batches",
            "route_seconds",
            "probe_seconds",
            "verdict_seconds",
            "batch_seconds",
            "slow_batches",
        }
        # Timing is off by default: no sampled batches, no wall time.
        assert stats.sample_every == 0
        assert stats.timed_batches == 0
        assert stats.batch_seconds == 0.0
    finally:
        checker.close()


def test_per_op_path_leaves_counters_untouched():
    """The reference path must NOT advance kernel counters — the smoke
    gate relies on counters proving batches actually took the kernel."""
    history = small_history(11, n=30)
    arrival = session_respecting_shuffle(history, Random(11))
    checker = Aion(INF, clock=lambda: 0.0)
    try:
        for txn in arrival:
            checker.receive(txn)
        assert checker.kernel_stats.batches == 0
        assert checker.kernel_stats.txns == 0
        assert checker.kernel_stats.probe_reads == 0
    finally:
        checker.close()


def test_empty_and_singleton_batches():
    """Degenerate partitions: empty batches are no-ops, and a stream of
    singleton batches equals one whole-stream batch."""
    history = small_history(3, n=40)
    arrival = session_respecting_shuffle(history, Random(3))
    whole = kernel_verdicts("aion", arrival, batch_size=len(arrival))
    singles = kernel_verdicts("aion", arrival, batch_size=1)
    assert singles == whole

    checker = Aion(INF, clock=lambda: 0.0)
    try:
        checker.receive_many([])
        assert checker.processed == 0
        assert checker.kernel_stats.batches == 0
    finally:
        checker.close()
