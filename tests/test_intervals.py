"""Tests for the interval index used by NOCONFLICT re-checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalIndex


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_point_interval(self):
        iv = Interval(4, 4, owner=1)
        assert iv.contains_point(4)
        assert not iv.contains_point(5)

    def test_overlap_closed_semantics(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))  # shared endpoint
        assert Interval(1, 5).overlaps(Interval(2, 3))  # containment
        assert not Interval(1, 4).overlaps(Interval(5, 9))
        assert Interval(3, 8).overlaps(Interval(1, 3))


class TestIntervalIndex:
    def test_empty_queries(self):
        index = IntervalIndex()
        assert index.overlapping(Interval(0, 100)) == []
        assert index.first_start_after(0) is None
        assert len(index) == 0

    def test_add_and_query(self):
        index = IntervalIndex()
        a = Interval(1, 5, owner=1)
        b = Interval(4, 9, owner=2)
        c = Interval(10, 12, owner=3)
        for iv in (a, b, c):
            index.add(iv)
        hits = index.overlapping(Interval(5, 6))
        assert set(h.owner for h in hits) == {1, 2}
        assert index.overlapping(Interval(13, 20)) == []
        assert len(index) == 3

    def test_remove(self):
        index = IntervalIndex()
        a = Interval(1, 5, owner=1)
        index.add(a)
        index.remove(a)
        assert index.overlapping(Interval(0, 10)) == []
        with pytest.raises(KeyError):
            index.remove(a)

    def test_same_start_different_owners(self):
        index = IntervalIndex()
        index.add(Interval(3, 7, owner=1))
        index.add(Interval(3, 9, owner=2))
        hits = index.overlapping(Interval(8, 8))
        assert [h.owner for h in hits] == [2]
        assert len(index) == 2

    def test_first_start_after(self):
        index = IntervalIndex()
        index.add(Interval(3, 7, owner=1))
        index.add(Interval(10, 11, owner=2))
        assert index.first_start_after(3).owner == 2
        assert index.first_start_after(2).owner == 1
        assert index.first_start_after(10) is None

    def test_pop_ending_before(self):
        index = IntervalIndex()
        index.add(Interval(1, 4, owner=1))
        index.add(Interval(2, 9, owner=2))
        removed = index.pop_ending_before(5)
        assert [iv.owner for iv in removed] == [1]
        assert len(index) == 1
        assert index.overlapping(Interval(0, 100))[0].owner == 2


class TestReachPruning:
    """Regression tests for the prefix-max ("reach") pruned scan.

    The docstring has always promised ``O(log n + answer)``; the
    skiplist-era implementation only early-outed on a single global
    maximum end and otherwise walked every interval with ``start <=
    query.end``.  A long-lived checker accumulates exactly that dead
    prefix — many old, short writer intervals below the active window —
    so these tests pin the *entries examined*, not just the answer.
    """

    N_OLD = 4000
    BASE = 100_000

    def _aged_index(self):
        index = IntervalIndex()
        for i in range(self.N_OLD):
            index.add(Interval(i, i + 1, owner=i))
        for i in range(64):
            index.add(Interval(self.BASE + i, self.BASE + i + 40, owner=self.N_OLD + i))
        return index

    def test_old_short_intervals_not_scanned(self):
        index = self._aged_index()
        before = index.scan_steps
        total_hits = 0
        for i in range(50):
            query = Interval(self.BASE + i, self.BASE + i + 10)
            hits = index.overlapping(query)
            assert hits, "queries overlap the active window"
            assert all(iv.overlaps(query) for iv in hits)
            total_hits += len(hits)
        scanned = index.scan_steps - before
        # scan_steps counts examined entries plus one probe per chunk
        # header; every examined entry is a hit or partial-chunk slop,
        # and probes are bounded by the chunk count (~9 here).  The
        # unpruned scan would have examined all ~4064 intervals per
        # query (~200k entries over 50 queries).
        assert scanned <= total_hits + 50 * 24, (scanned, total_hits)

    def test_query_reaching_into_the_dead_prefix_still_correct(self):
        index = self._aged_index()
        # A query overlapping the old region must still find everything.
        hits = index.overlapping(Interval(10, 20))
        assert {iv.owner for iv in hits} == set(range(9, 21))

    def test_pop_ending_before_stops_at_surviving_chunk(self):
        index = self._aged_index()
        before = index.gc_scan_steps
        removed = index.pop_ending_before(self.BASE)
        assert len(removed) == self.N_OLD
        assert {iv.owner for iv in removed} == set(range(self.N_OLD))
        # Dead chunks are dropped wholesale; only the mixed boundary
        # chunk contributes examined survivors.
        assert index.gc_scan_steps - before <= 2 * 512
        assert len(index) == 64
        survivors = index.overlapping(Interval(0, 10 * self.BASE))
        assert len(survivors) == 64


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "query", "gc"]),
            st.integers(0, 120),
            st.integers(0, 40),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_churn_matches_naive_model(ops):
    """Adds, removals, overlap queries and GC sweeps against a brute-force
    model: reach arrays must stay consistent through arbitrary churn."""
    index = IntervalIndex()
    model: dict = {}  # (start, owner) -> Interval
    next_owner = 0
    for kind, a, b in ops:
        if kind == "add":
            iv = Interval(a, a + b, owner=next_owner % 7)
            next_owner += 1
            index.add(iv)
            model[(iv.start, iv.owner)] = iv
        elif kind == "remove":
            if model:
                key = sorted(model)[a % len(model)]
                index.remove(model.pop(key))
        elif kind == "query":
            q = Interval(a, a + b)
            got = sorted((iv.start, iv.owner) for iv in index.overlapping(q))
            expected = sorted(k for k, iv in model.items() if iv.overlaps(q))
            assert got == expected
            after = index.first_start_after(a)
            live = sorted(k for k in model if k[0] > a)
            assert (None if after is None else (after.start, after.owner)) == (
                live[0] if live else None
            )
        else:  # gc
            removed = sorted((iv.start, iv.owner) for iv in index.pop_ending_before(a))
            expected = sorted(k for k, iv in model.items() if iv.end < a)
            assert removed == expected
            for key in expected:
                del model[key]
        assert len(index) == len(model)
    assert sorted((iv.start, iv.owner) for iv in index) == sorted(model)


@settings(max_examples=200, deadline=None)
@given(
    intervals=st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 40)), min_size=0, max_size=30
    ),
    query=st.tuples(st.integers(0, 100), st.integers(0, 40)),
)
def test_overlap_matches_naive(intervals, query):
    """Property: overlap query equals the brute-force scan."""
    index = IntervalIndex()
    stored = []
    for owner, (start, length) in enumerate(intervals):
        iv = Interval(start, start + length, owner=owner)
        index.add(iv)
        stored.append(iv)
    q = Interval(query[0], query[0] + query[1], owner="q")
    expected = {iv.owner for iv in stored if iv.overlaps(q)}
    got = {iv.owner for iv in index.overlapping(q)}
    assert got == expected
