"""Tests for the interval index used by NOCONFLICT re-checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalIndex


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_point_interval(self):
        iv = Interval(4, 4, owner=1)
        assert iv.contains_point(4)
        assert not iv.contains_point(5)

    def test_overlap_closed_semantics(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))  # shared endpoint
        assert Interval(1, 5).overlaps(Interval(2, 3))  # containment
        assert not Interval(1, 4).overlaps(Interval(5, 9))
        assert Interval(3, 8).overlaps(Interval(1, 3))


class TestIntervalIndex:
    def test_empty_queries(self):
        index = IntervalIndex()
        assert index.overlapping(Interval(0, 100)) == []
        assert index.first_start_after(0) is None
        assert len(index) == 0

    def test_add_and_query(self):
        index = IntervalIndex()
        a = Interval(1, 5, owner=1)
        b = Interval(4, 9, owner=2)
        c = Interval(10, 12, owner=3)
        for iv in (a, b, c):
            index.add(iv)
        hits = index.overlapping(Interval(5, 6))
        assert set(h.owner for h in hits) == {1, 2}
        assert index.overlapping(Interval(13, 20)) == []
        assert len(index) == 3

    def test_remove(self):
        index = IntervalIndex()
        a = Interval(1, 5, owner=1)
        index.add(a)
        index.remove(a)
        assert index.overlapping(Interval(0, 10)) == []
        with pytest.raises(KeyError):
            index.remove(a)

    def test_same_start_different_owners(self):
        index = IntervalIndex()
        index.add(Interval(3, 7, owner=1))
        index.add(Interval(3, 9, owner=2))
        hits = index.overlapping(Interval(8, 8))
        assert [h.owner for h in hits] == [2]
        assert len(index) == 2

    def test_first_start_after(self):
        index = IntervalIndex()
        index.add(Interval(3, 7, owner=1))
        index.add(Interval(10, 11, owner=2))
        assert index.first_start_after(3).owner == 2
        assert index.first_start_after(2).owner == 1
        assert index.first_start_after(10) is None

    def test_pop_ending_before(self):
        index = IntervalIndex()
        index.add(Interval(1, 4, owner=1))
        index.add(Interval(2, 9, owner=2))
        removed = index.pop_ending_before(5)
        assert [iv.owner for iv in removed] == [1]
        assert len(index) == 1
        assert index.overlapping(Interval(0, 100))[0].owner == 2


@settings(max_examples=200, deadline=None)
@given(
    intervals=st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 40)), min_size=0, max_size=30
    ),
    query=st.tuples(st.integers(0, 100), st.integers(0, 40)),
)
def test_overlap_matches_naive(intervals, query):
    """Property: overlap query equals the brute-force scan."""
    index = IntervalIndex()
    stored = []
    for owner, (start, length) in enumerate(intervals):
        iv = Interval(start, start + length, owner=owner)
        index.add(iv)
        stored.append(iv)
    q = Interval(query[0], query[0] + query[1], owner="q")
    expected = {iv.owner for iv in stored if iv.overlaps(q)}
    got = {iv.owner for iv in index.overlapping(q)}
    assert got == expected
