"""Observability subsystem tests: metrics registry, HTTP sidecar,
health degradation, stats caching, and the metrics-on/off differential.

The differential class is the acceptance claim for the whole surface:
instrumentation (stage timing, slow-batch tracing, latency histograms)
must be verdict-neutral — enabling every knob changes no violation, for
the plain, SER, and sharded checkers alike.
"""

from __future__ import annotations

import asyncio
import io
import json
import time

import pytest

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.reference import normalize_violations
from repro.core.sharded import ShardedAion
from repro.histories.anomalies import ANOMALY_CATALOG
from repro.obs import Counter, Gauge, Histogram, HttpSidecar, MetricsRegistry, SlowBatchLog
from repro.service import (
    CheckerClient,
    ServiceConfig,
    ServiceThread,
    transactions_in_commit_order,
)
from repro.service.client import http_get_json, http_get_text

INF = AionConfig(timeout=float("inf"))


def anomaly_txns(name: str):
    return transactions_in_commit_order(ANOMALY_CATALOG[name].build())


# ----------------------------------------------------------------------
# Registry: counters, gauges, histogram math, Prometheus text
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_monotonic(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.set_total(42)  # scrape-time mirror of an external int
        assert counter.value == 42

    def test_gauge_both_ways(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_labels_cached_and_validated(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        child = counter.labels("a")
        assert counter.labels("a") is child
        assert counter.labels("b") is not child
        with pytest.raises(ValueError):
            counter.labels("a", "extra")
        with pytest.raises(ValueError):
            Counter("plain_total", "help").labels("a")

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_histogram_le_is_inclusive(self):
        hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        hist.observe(0.1)   # exactly on a bound -> that bound's bucket
        hist.observe(0.5)
        hist.observe(5.0)   # above every bound -> +Inf only
        counts, total_sum, total = hist.snapshot()
        assert counts == [1, 1, 1]
        assert total == 3
        assert total_sum == pytest.approx(5.6)

    def test_histogram_weighted_observe(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0,))
        hist.observe(0.5, count=10)
        counts, total_sum, total = hist.snapshot()
        assert counts == [10, 0]
        assert total == 10
        assert total_sum == pytest.approx(5.0)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1.0, 1.0))

    def test_quantile_interpolation(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0, 2.0))
        hist.observe(0.5, count=2)
        hist.observe(1.5, count=2)
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(0.75) == pytest.approx(1.5)

    def test_quantile_empty_and_overflow(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0, 2.0))
        assert hist.quantile(0.5) is None
        hist.observe(99.0, count=4)  # all mass in +Inf
        # Clamped to the highest finite bound, as histogram_quantile does.
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_summary_shape(self):
        hist = Histogram("h_seconds", "help", buckets=(1.0,))
        assert hist.summary() == {
            "count": 0, "sum_s": 0.0, "p50_s": None, "p95_s": None, "p99_s": None,
        }
        hist.observe(0.5)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p99_s"] is not None

    def test_prometheus_golden_render(self):
        registry = MetricsRegistry()
        jobs = registry.counter("demo_jobs_total", "Jobs processed", labelnames=("kind",))
        jobs.labels("a").inc(2)
        jobs.labels("b").inc()
        registry.gauge("demo_depth", "Queue depth").set(7)
        latency = registry.histogram("demo_seconds", "Latency", buckets=(0.1, 1.0))
        latency.observe(0.1)
        latency.observe(0.5)
        latency.observe(5.0)
        assert registry.render() == (
            "# HELP demo_jobs_total Jobs processed\n"
            "# TYPE demo_jobs_total counter\n"
            'demo_jobs_total{kind="a"} 2\n'
            'demo_jobs_total{kind="b"} 1\n'
            "# HELP demo_depth Queue depth\n"
            "# TYPE demo_depth gauge\n"
            "demo_depth 7\n"
            "# HELP demo_seconds Latency\n"
            "# TYPE demo_seconds histogram\n"
            'demo_seconds_bucket{le="0.1"} 1\n'
            'demo_seconds_bucket{le="1"} 2\n'
            'demo_seconds_bucket{le="+Inf"} 3\n'
            "demo_seconds_sum 5.6\n"
            "demo_seconds_count 3\n"
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "h", labelnames=("v",))
        counter.labels('a"b\\c\nd').inc()
        text = registry.render()
        assert 'esc_total{v="a\\"b\\\\c\\nd"} 1\n' in text

    def test_labeled_histogram_renders_per_child(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "stage_seconds", "h", buckets=(1.0,), labelnames=("stage",)
        )
        hist.labels("route").observe(0.5)
        hist.labels("probe").observe(2.0)
        text = registry.render()
        assert 'stage_seconds_bucket{stage="route",le="1"} 1' in text
        assert 'stage_seconds_bucket{stage="probe",le="+Inf"} 1' in text
        assert 'stage_seconds_count{stage="route"} 1' in text


# ----------------------------------------------------------------------
# Slow-batch trace log
# ----------------------------------------------------------------------

class TestSlowBatchLog:
    def test_ring_and_stream_mirror(self):
        stream = io.StringIO()
        log = SlowBatchLog(keep=2, stream=stream)
        for index in range(3):
            log.record({"seconds": index})
        assert log.total == 3
        assert len(log) == 2  # ring dropped the oldest
        tail = log.tail()
        assert [entry["seconds"] for entry in tail] == [1, 2]
        assert [entry["seq"] for entry in tail] == [2, 3]
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["slow_batch"]["seconds"] == 0

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, _s):
                raise OSError("stderr is gone")

        log = SlowBatchLog(stream=Broken())
        log.record({"seconds": 1})  # must not raise
        assert log.total == 1


# ----------------------------------------------------------------------
# HTTP sidecar (direct, no daemon)
# ----------------------------------------------------------------------

class TestHttpSidecar:
    def test_routing_and_error_paths(self):
        async def scenario():
            async def hello():
                return 200, "text/plain", b"hi"

            async def boom():
                raise RuntimeError("kaput")

            sidecar = HttpSidecar("127.0.0.1", 0, {"/hello": hello, "/boom": boom})
            await sidecar.start()
            host, port = sidecar.address

            async def raw_request(payload: bytes) -> bytes:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(payload)
                await writer.drain()
                data = await reader.read()
                writer.close()
                return data

            ok = await raw_request(b"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
            assert ok.startswith(b"HTTP/1.1 200 OK") and ok.endswith(b"hi")
            assert b"Connection: close" in ok
            query = await raw_request(b"GET /hello?x=1 HTTP/1.1\r\n\r\n")
            assert query.startswith(b"HTTP/1.1 200")
            missing = await raw_request(b"GET /nope HTTP/1.1\r\n\r\n")
            assert missing.startswith(b"HTTP/1.1 404")
            assert b"/hello" in missing  # 404 lists the route table
            post = await raw_request(b"POST /hello HTTP/1.1\r\n\r\n")
            assert post.startswith(b"HTTP/1.1 405")
            malformed = await raw_request(b"garbage\r\n\r\n")
            assert malformed.startswith(b"HTTP/1.1 400")
            failed = await raw_request(b"GET /boom HTTP/1.1\r\n\r\n")
            assert failed.startswith(b"HTTP/1.1 500")
            assert b"kaput" in failed
            sidecar.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Daemon endpoints: /metrics, /health, /stats
# ----------------------------------------------------------------------

@pytest.fixture
def start_service():
    handles = []

    def _start(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("http_port", 0)
        kwargs.setdefault("timeout", float("inf"))
        handle = ServiceThread(ServiceConfig(**kwargs)).start()
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()


def submit(handle, txns):
    host, port = handle.tcp_address
    with CheckerClient(host, port) as client:
        client.connect()
        client.submit_many(txns)
        return client.finalize()


class TestDaemonEndpoints:
    def test_metrics_exposition(self, start_service):
        handle = start_service(kernel_sample_every=1, slow_batch_ms=1e-6)
        submit(handle, anomaly_txns("dirty-read"))
        host, port = handle.http_address
        status, body = http_get_text(host, port, "/metrics")
        assert status == 200
        for family in (
            "repro_ingested_txns_total",
            "repro_processed_txns_total",
            "repro_violations_total",
            "repro_queue_depth_txns",
            "repro_resident_txns",
            "repro_resident_bytes",
            "repro_kernel_batches_total",
            "repro_kernel_slow_batches_total",
            "repro_gc_debt",
            "repro_submit_to_verdict_seconds_bucket",
            "repro_submit_to_verdict_seconds_count",
        ):
            assert family in body, family
        lines = dict(
            line.rsplit(" ", 1)
            for line in body.splitlines()
            if not line.startswith("#") and "{" not in line
        )
        assert int(lines["repro_ingested_txns_total"]) == 3
        assert int(lines["repro_violations_total"]) == 1
        assert float(lines["repro_kernel_timed_batches_total"]) >= 1
        assert 'repro_wire_frames_total{codec="v2",direction="in"}' in body
        assert 'repro_kernel_stage_seconds_total{stage="route"}' in body
        assert 'repro_kernel_ops_total{stage="probe_reads"}' in body

    def test_metrics_per_shard_gauges(self, start_service):
        handle = start_service(n_shards=3, kernel_sample_every=1)
        submit(handle, anomaly_txns("lost-update"))
        host, port = handle.http_address
        status, body = http_get_text(host, port, "/metrics")
        assert status == 200
        assert 'repro_shard_versions{shard="0"}' in body
        assert 'repro_shard_intervals{shard="2"}' in body

    def test_health_ok_and_stats_endpoint(self, start_service):
        handle = start_service()
        host, port = handle.http_address
        status, health = http_get_json(host, port, "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert set(health["components"]) == {
            "drain", "backlog", "queue", "ext_timer", "resume_storm", "shards",
        }
        assert all(component["ok"] for component in health["components"].values())
        # Infinite EXT timeout -> the timer component reports disabled.
        assert "disabled" in health["components"]["ext_timer"]["detail"]
        status, stats = http_get_json(host, port, "/stats")
        assert status == 200
        assert stats["checker"] == "aion"
        assert "queue_high_water" in stats

    def test_health_ext_timer_component_when_finite(self, start_service):
        handle = start_service(timeout=5.0, poll_interval=0.05)
        deadline = time.monotonic() + 5.0
        host, port = handle.http_address
        while time.monotonic() < deadline:
            _status, health = http_get_json(host, port, "/health")
            if health["components"]["ext_timer"].get("poll_age_s") is not None:
                break
            time.sleep(0.05)
        assert health["components"]["ext_timer"]["ok"]
        assert health["components"]["ext_timer"]["detail"] == "polling"

    def test_health_503_when_drain_task_dies(self, start_service):
        handle = start_service()
        service = handle.service
        handle._loop.call_soon_threadsafe(service._drain_task.cancel)
        host, port = handle.http_address
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            status, health = http_get_json(host, port, "/health")
            if status == 503:
                break
            time.sleep(0.02)
        assert status == 503
        assert health["status"] == "unhealthy"
        assert not health["components"]["drain"]["ok"]

    def test_health_503_when_replay_backlog_saturates(self, start_service):
        handle = start_service()
        service = handle.service
        backlog = service._violation_log
        backlog.extend({"type": "violation"} for _ in range(backlog.maxlen))
        host, port = handle.http_address
        status, health = http_get_json(host, port, "/health")
        assert status == 503
        assert not health["components"]["backlog"]["ok"]
        assert "saturated" in health["components"]["backlog"]["detail"]


# ----------------------------------------------------------------------
# STATS payload satellites: byte-cache TTL, high-water, scan counters
# ----------------------------------------------------------------------

class TestStatsExtras:
    def test_estimated_bytes_cached_for_ttl(self, start_service):
        handle = start_service(http_port=None, stats_bytes_ttl=60.0)
        service = handle.service
        real = service.checker.estimated_bytes
        calls = []

        def counting():
            calls.append(1)
            return real()

        service.checker.estimated_bytes = counting
        first = service.stats(include_bytes=True)["estimated_bytes"]
        second = service.stats(include_bytes=True)["estimated_bytes"]
        assert len(calls) == 1  # second hit served from the cache
        assert first == second
        service.stats(include_bytes=False)
        assert len(calls) == 1  # cheap mode never measures

    def test_zero_ttl_disables_the_cache(self, start_service):
        handle = start_service(http_port=None, stats_bytes_ttl=0.0)
        service = handle.service
        real = service.checker.estimated_bytes
        calls = []

        def counting():
            calls.append(1)
            return real()

        service.checker.estimated_bytes = counting
        service.stats(include_bytes=True)
        service.stats(include_bytes=True)
        assert len(calls) == 2

    def test_queue_high_water_and_scan_counters(self, start_service):
        handle = start_service()
        submit(handle, anomaly_txns("dirty-read"))
        host, port = handle.tcp_address
        with CheckerClient(host, port) as client:
            client.connect()
            stats = client.stats()
        assert stats["queue_high_water"] >= 1
        assert stats["queue_high_water"] <= stats["queue_capacity"]
        assert stats["interval_scan_steps"] >= 0
        assert stats["interval_gc_scan_steps"] >= 0
        assert stats["gc"]["debt"] >= 0
        assert stats["latency"]["count"] >= 1
        assert stats["slow_batches"]["total"] == 0

    def test_slow_batches_surface_in_stats(self, start_service):
        handle = start_service(kernel_sample_every=1, slow_batch_ms=1e-6)
        handle.service.slow_batch_log._stream = None  # keep test output clean
        submit(handle, anomaly_txns("dirty-read"))
        stats = handle.service.stats(include_bytes=False)
        assert stats["slow_batches"]["total"] >= 1
        recent = stats["slow_batches"]["recent"]
        assert recent, "expected at least one retained trace"
        record = recent[-1]
        assert record["checker"] == "aion"
        assert record["batch_txns"] >= 1
        assert record["seconds"] >= 0
        assert "top_keys" in record


# ----------------------------------------------------------------------
# Instrumentation is verdict-neutral (metrics on == metrics off)
# ----------------------------------------------------------------------

def _make_checker(kind):
    if kind == "aion":
        return Aion(INF, clock=lambda: 0.0)
    if kind == "ser":
        return AionSer(INF, clock=lambda: 0.0)
    assert kind == "sharded"
    return ShardedAion(INF, n_shards=3, clock=lambda: 0.0)


def _run_batched(checker, txns, batch_size=4):
    for offset in range(0, len(txns), batch_size):
        checker.receive_many(txns[offset : offset + batch_size])
    return normalize_violations(checker.finalize())


class TestInstrumentationDifferential:
    @pytest.mark.parametrize("kind", ["aion", "ser", "sharded"])
    @pytest.mark.parametrize(
        "name", ["dirty-read", "lost-update", "write-skew", "long-fork"]
    )
    def test_verdicts_identical_with_instrumentation(self, kind, name):
        txns = anomaly_txns(name)
        plain = _make_checker(kind)
        baseline = _run_batched(plain, txns)

        instrumented = _make_checker(kind)
        log = SlowBatchLog(stream=None)
        stats = instrumented.kernel_stats
        stats.sample_every = 1
        stats.slow_threshold = 1e-9  # every batch traces
        stats.on_slow_batch = log.record
        observed = _run_batched(instrumented, txns)

        assert observed == baseline
        assert stats.timed_batches == stats.batches
        assert stats.batch_seconds > 0.0
        assert stats.slow_batches == stats.batches
        assert log.total == stats.batches
        record = log.tail(1)[0]
        assert record["batch_txns"] >= 1
        assert record["seconds"] >= 0

    def test_sampling_cadence(self):
        checker = _make_checker("aion")
        stats = checker.kernel_stats
        stats.sample_every = 2
        txns = anomaly_txns("dirty-read")
        for txn in txns + txns[:1]:  # 4 single-transaction batches
            checker.receive_many([txn])
        assert stats.batches == 4
        assert stats.timed_batches == 2  # batches 0 and 2 sampled

    def test_kernel_op_counters_unchanged_by_timing(self):
        txns = anomaly_txns("lost-update")
        plain = _make_checker("aion")
        _run_batched(plain, txns, batch_size=2)
        timed = _make_checker("aion")
        timed.kernel_stats.sample_every = 1
        _run_batched(timed, txns, batch_size=2)
        baseline = plain.kernel_stats.as_dict()
        observed = timed.kernel_stats.as_dict()
        for field in (
            "batches", "txns", "route_ops", "probe_reads", "probe_writes",
            "verdict_tracks", "verdict_reevals", "verdict_conflicts",
        ):
            assert observed[field] == baseline[field], field

    def test_failing_slow_batch_hook_is_contained(self):
        checker = _make_checker("aion")
        stats = checker.kernel_stats
        stats.slow_threshold = 1e-9

        def exploding(_trace):
            raise RuntimeError("observer bug")

        stats.on_slow_batch = exploding
        result = _run_batched(checker, anomaly_txns("dirty-read"))
        assert result  # verdict still produced
        assert stats.slow_batches >= 1

    def test_shard_stats_rows(self):
        checker = _make_checker("sharded")
        try:
            checker.receive_many(anomaly_txns("lost-update"))
            rows = checker.shard_stats()
            assert len(rows) == 3
            for row in rows:
                assert set(row) >= {
                    "shard", "versions", "intervals", "ext_reads",
                    "scan_steps", "gc_scan_steps", "staged_gc",
                    "pending_removals", "last_batch_commands",
                }
            assert sum(row["versions"] for row in rows) > 0
            assert checker.workers_alive() is True
        finally:
            checker.close()
